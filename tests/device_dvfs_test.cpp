// DVFS governor, cubic power scaling, and the thermal throttle model.
#include <gtest/gtest.h>

#include "device/dvfs.hpp"

namespace fedco::device {
namespace {

TEST(Governor, PowersaveAndPerformancePinEndpoints) {
  const FrequencyLadder ladder;
  EXPECT_DOUBLE_EQ(select_frequency(Governor::kPowersave, 1.0, ladder),
                   ladder.min());
  EXPECT_DOUBLE_EQ(select_frequency(Governor::kPerformance, 0.0, ladder),
                   ladder.max());
}

TEST(Governor, SchedutilTracksUtilizationWithHeadroom) {
  const FrequencyLadder ladder;
  // util 0 -> lowest step; util 1 -> max.
  EXPECT_DOUBLE_EQ(select_frequency(Governor::kSchedutil, 0.0, ladder),
                   ladder.min());
  EXPECT_DOUBLE_EQ(select_frequency(Governor::kSchedutil, 1.0, ladder),
                   ladder.max());
  // util 0.5 with x1.25 headroom on max 2.4 -> target 1.5 -> first step >= 1.5.
  EXPECT_DOUBLE_EQ(select_frequency(Governor::kSchedutil, 0.5, ladder), 1.5);
  // Monotone in utilization.
  double prev = 0.0;
  for (double util = 0.0; util <= 1.0; util += 0.05) {
    const double f = select_frequency(Governor::kSchedutil, util, ladder);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Governor, EmptyLadderIsZero) {
  FrequencyLadder empty;
  empty.freqs_ghz.clear();
  EXPECT_EQ(select_frequency(Governor::kSchedutil, 0.5, empty), 0.0);
}

TEST(DynamicPower, CubicScaling) {
  EXPECT_DOUBLE_EQ(dynamic_power_scale(2.4, 2.4), 1.0);
  EXPECT_NEAR(dynamic_power_scale(1.2, 2.4), 0.125, 1e-12);  // (1/2)^3
  EXPECT_DOUBLE_EQ(dynamic_power_scale(0.0, 2.4), 0.0);
  EXPECT_DOUBLE_EQ(dynamic_power_scale(3.0, 2.4), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(dynamic_power_scale(1.0, 0.0), 0.0);  // degenerate
}

TEST(Thermal, StartsAtAmbientNoThrottle) {
  ThermalModel model;
  EXPECT_DOUBLE_EQ(model.temperature_c(), 25.0);
  EXPECT_DOUBLE_EQ(model.throttle_factor(), 1.0);
  EXPECT_FALSE(model.throttling());
}

TEST(Thermal, HeatsUnderLoadCoolsAtIdle) {
  ThermalModel model;
  for (int i = 0; i < 600; ++i) model.step(8.0, 1.0);  // HiKey-class draw
  const double hot = model.temperature_c();
  EXPECT_GT(hot, model.config().throttle_onset_c);
  EXPECT_GT(model.throttle_factor(), 1.0);
  EXPECT_TRUE(model.throttling());
  for (int i = 0; i < 600; ++i) model.step(0.2, 1.0);  // idle
  EXPECT_LT(model.temperature_c(), hot);
}

TEST(Thermal, ReachesSteadyStateBelowCritical) {
  // Sustained 2 W (phone-class training) equilibrates: heating rate equals
  // cooling rate well before the critical temperature.
  ThermalModel model;
  for (int i = 0; i < 5000; ++i) model.step(2.0, 1.0);
  const double t1 = model.temperature_c();
  for (int i = 0; i < 1000; ++i) model.step(2.0, 1.0);
  EXPECT_NEAR(model.temperature_c(), t1, 0.1);
  EXPECT_LT(model.temperature_c(), model.config().critical_c);
}

TEST(Thermal, ThrottleFactorSaturatesAtMaxSlowdown) {
  ThermalConfig cfg;
  cfg.max_slowdown = 2.5;
  ThermalModel model{cfg};
  for (int i = 0; i < 100000; ++i) model.step(50.0, 1.0);
  EXPECT_LE(model.throttle_factor(), 2.5 + 1e-12);
  EXPECT_GT(model.throttle_factor(), 2.0);
  model.reset();
  EXPECT_DOUBLE_EQ(model.temperature_c(), cfg.ambient_c);
}

TEST(Thermal, NeverCoolsBelowAmbient) {
  ThermalModel model;
  for (int i = 0; i < 1000; ++i) model.step(0.0, 1.0);
  EXPECT_GE(model.temperature_c(), model.config().ambient_c);
  model.step(1.0, 0.0);  // dt = 0 is a no-op
  EXPECT_DOUBLE_EQ(model.temperature_c(), model.config().ambient_c);
}

}  // namespace
}  // namespace fedco::device
