#include <gtest/gtest.h>

#include "util/log.hpp"

namespace fedco::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(LogTest, SuppressedBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_error("should not appear");
  log_warn("nor this");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LogTest, EmitsAtOrAboveThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_debug("hidden");
  log_info("visible ", 42, " units");
  log_error("also visible");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("[INFO] visible 42 units"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR] also visible"), std::string::npos);
}

}  // namespace
}  // namespace fedco::util
