// Bit-exact fingerprinting of ExperimentResult for the §6 determinism
// contract. The parity suite hashes every scalar, trace, and lag/gap sample
// of a run into one FNV-1a value; two runs agree on the fingerprint iff they
// agree bit-for-bit on everything the driver reports. The golden constants
// in core_scheduler_parity_test.cpp were captured from the pre-refactor
// monolithic driver (PR 2) with exactly these configs, so any behavioural
// drift in a refactored Scheduler shows up as a fingerprint mismatch.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace fedco::testing {

class Fingerprint {
 public:
  void add_bytes(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ULL;  // FNV-1a 64-bit prime
    }
  }
  void add(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_bytes(&bits, sizeof(bits));
  }
  void add(std::uint64_t v) noexcept { add_bytes(&v, sizeof(v)); }
  void add(const std::string& s) noexcept { add_bytes(s.data(), s.size()); }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

/// Hash every observable of a result (scalars, traces, per-update samples).
[[nodiscard]] inline std::uint64_t fingerprint(
    const core::ExperimentResult& r) {
  Fingerprint fp;
  fp.add(r.total_energy_j);
  fp.add(r.training_j);
  fp.add(r.corun_j);
  fp.add(r.app_j);
  fp.add(r.idle_j);
  fp.add(r.network_j);
  fp.add(r.overhead_j);
  fp.add(r.avg_queue_q);
  fp.add(r.avg_queue_h);
  fp.add(r.final_queue_q);
  fp.add(r.final_queue_h);
  fp.add(r.total_updates);
  fp.add(r.dropped_updates);
  fp.add(r.corun_sessions);
  fp.add(r.separate_sessions);
  fp.add(r.avg_lag);
  fp.add(r.avg_gap);
  fp.add(r.final_accuracy);
  fp.add(r.final_loss);
  fp.add(r.battery_cycles_total);
  fp.add(static_cast<std::uint64_t>(r.battery_recharges));
  fp.add(r.battery_gated_slots);
  fp.add(r.max_temperature_c);
  fp.add(r.worst_throttle_factor);
  fp.add(r.throttled_sessions);
  for (const auto& name : r.traces.names()) {
    const auto* series = r.traces.find(name);
    if (series == nullptr) continue;
    fp.add(name);
    for (std::size_t i = 0; i < series->size(); ++i) {
      fp.add(series->time_at(i));
      fp.add(series->value_at(i));
    }
  }
  for (const auto& s : r.lag_gap_samples) {
    fp.add(s.time_s);
    fp.add(s.lag);
    fp.add(s.gap);
    fp.add(static_cast<std::uint64_t>(s.user));
  }
  return fp.value();
}

/// One named parity scenario: a config to run under each SchedulerKind.
struct ParityScenario {
  const char* name;
  core::ExperimentConfig config;
};

/// The scenario grid the golden constants were captured on. Exercises the
/// plain path, the environment extensions (battery gate, thermal, drops,
/// diurnal arrivals, decision overhead/granularity), and real training.
[[nodiscard]] inline std::vector<ParityScenario> parity_scenarios() {
  std::vector<ParityScenario> scenarios;

  core::ExperimentConfig plain;
  plain.num_users = 10;
  plain.horizon_slots = 2500;
  plain.arrival_probability = 0.002;
  plain.seed = 42;
  scenarios.push_back({"plain", plain});

  core::ExperimentConfig env = plain;
  env.seed = 1234;
  env.diurnal = true;
  env.diurnal_swing = 0.7;
  env.track_battery = true;
  env.battery.capacity_mah = 150.0;
  env.min_soc_to_train = 0.4;
  env.enable_thermal = true;
  env.upload_drop_probability = 0.2;
  env.decision_eval_seconds = 0.01;
  env.decision_interval_slots = 5;
  env.record_per_user_gaps = true;
  env.use_lte = true;
  scenarios.push_back({"environment", env});

  core::ExperimentConfig real;
  real.num_users = 4;
  real.horizon_slots = 1200;
  real.arrival_probability = 0.002;
  real.seed = 7;
  real.real_training = true;
  real.model = core::ModelKind::kMlp;
  real.dataset.classes = 3;
  real.dataset.height = 8;
  real.dataset.width = 8;
  real.dataset.train_per_class = 20;
  real.dataset.test_per_class = 8;
  real.eval_interval_s = 400.0;
  real.offline_window_slots = 300;
  scenarios.push_back({"real-training", real});

  return scenarios;
}

}  // namespace fedco::testing
