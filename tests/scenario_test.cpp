// Scenario subsystem: generate_fleet determinism and semantics, the
// trivial-spec golden-parity bridge (a default spec expanded through
// apply_scenario runs bit-identically to the homogeneous config), churn
// behaviour under all four schedulers, and per_user validation in the
// driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/config_io.hpp"
#include "golden_fingerprint.hpp"
#include "scenario/spec.hpp"

namespace fedco::scenario {
namespace {

ScenarioSpec heterogeneous_spec() {
  ScenarioSpec spec;
  spec.name = "het";
  spec.num_users = 80;
  spec.horizon_slots = 2000;
  spec.device_mix = {{device::DeviceKind::kPixel2, 0.5},
                     {device::DeviceKind::kNexus6, 0.25},
                     {device::DeviceKind::kHikey970, 0.25}};
  spec.arrival.distribution = ArrivalSpec::Distribution::kLogNormal;
  spec.arrival.mean_probability = 0.002;
  spec.arrival.sigma = 0.5;
  spec.diurnal.enabled = true;
  spec.diurnal.swing = 0.7;
  spec.diurnal.timezone_spread_hours = 8.0;
  spec.network.lte_fraction = 0.25;
  spec.churn.churn_fraction = 0.5;
  spec.churn.min_presence = 0.3;
  spec.churn.max_presence = 0.6;
  return spec;
}

TEST(GenerateFleet, TrivialSpecExpandsToAllDefaultUsers) {
  // The identity contract: a spec that states nothing but the population
  // size yields overrides that change nothing.
  ScenarioSpec spec;
  spec.num_users = 12;
  const std::vector<PerUserConfig> fleet = generate_fleet(spec, 99);
  ASSERT_EQ(fleet.size(), 12u);
  for (const PerUserConfig& user : fleet) {
    EXPECT_TRUE(user.is_default());
  }
}

TEST(GenerateFleet, DeterministicInSpecAndSeed) {
  const ScenarioSpec spec = heterogeneous_spec();
  EXPECT_EQ(generate_fleet(spec, 7), generate_fleet(spec, 7));
  EXPECT_NE(generate_fleet(spec, 7), generate_fleet(spec, 8));
}

TEST(GenerateFleet, ConcernStreamsAreIndependent) {
  // Adding churn must not re-roll device assignment or arrival rates.
  ScenarioSpec spec = heterogeneous_spec();
  spec.churn.churn_fraction = 0.0;
  const std::vector<PerUserConfig> without = generate_fleet(spec, 7);
  spec.churn.churn_fraction = 0.5;
  const std::vector<PerUserConfig> with = generate_fleet(spec, 7);
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i].device, with[i].device);
    EXPECT_EQ(without[i].arrival_probability, with[i].arrival_probability);
    EXPECT_EQ(without[i].use_lte, with[i].use_lte);
  }
}

TEST(GenerateFleet, DeviceMixApportionsExactly) {
  ScenarioSpec spec;
  spec.num_users = 8;
  spec.device_mix = {{device::DeviceKind::kPixel2, 0.5},
                     {device::DeviceKind::kNexus6, 0.25},
                     {device::DeviceKind::kHikey970, 0.25}};
  const std::vector<PerUserConfig> fleet = generate_fleet(spec, 3);
  std::size_t pixel2 = 0, nexus6 = 0, hikey = 0;
  for (const PerUserConfig& user : fleet) {
    ASSERT_TRUE(user.device.has_value());
    pixel2 += *user.device == device::DeviceKind::kPixel2 ? 1 : 0;
    nexus6 += *user.device == device::DeviceKind::kNexus6 ? 1 : 0;
    hikey += *user.device == device::DeviceKind::kHikey970 ? 1 : 0;
  }
  EXPECT_EQ(pixel2, 4u);
  EXPECT_EQ(nexus6, 2u);
  EXPECT_EQ(hikey, 2u);
}

TEST(GenerateFleet, LargestRemainderCoversOddPopulations) {
  ScenarioSpec spec;
  spec.num_users = 7;  // 1/3 splits do not divide 7
  spec.device_mix = {{device::DeviceKind::kPixel2, 1.0 / 3.0},
                     {device::DeviceKind::kNexus6, 1.0 / 3.0},
                     {device::DeviceKind::kHikey970, 1.0 / 3.0}};
  const std::vector<PerUserConfig> fleet = generate_fleet(spec, 3);
  std::size_t assigned = 0;
  for (const PerUserConfig& user : fleet) {
    assigned += user.device.has_value() ? 1 : 0;
  }
  EXPECT_EQ(assigned, 7u);  // every user got a device, none left over
}

TEST(GenerateFleet, LognormalRatesPreserveTheMean) {
  ScenarioSpec spec;
  spec.num_users = 4000;
  spec.arrival.distribution = ArrivalSpec::Distribution::kLogNormal;
  spec.arrival.mean_probability = 0.002;
  spec.arrival.sigma = 0.5;
  const std::vector<PerUserConfig> fleet = generate_fleet(spec, 11);
  double sum = 0.0;
  for (const PerUserConfig& user : fleet) {
    ASSERT_TRUE(user.arrival_probability.has_value());
    EXPECT_GE(*user.arrival_probability, 0.0);
    sum += *user.arrival_probability;
  }
  EXPECT_NEAR(sum / static_cast<double>(fleet.size()), 0.002, 0.0002);
}

TEST(GenerateFleet, UniformRatesStayInBounds) {
  ScenarioSpec spec;
  spec.num_users = 200;
  spec.arrival.distribution = ArrivalSpec::Distribution::kUniform;
  spec.arrival.min_probability = 0.001;
  spec.arrival.max_probability = 0.005;
  for (const PerUserConfig& user : generate_fleet(spec, 13)) {
    ASSERT_TRUE(user.arrival_probability.has_value());
    EXPECT_GE(*user.arrival_probability, 0.001);
    EXPECT_LT(*user.arrival_probability, 0.005);
  }
}

TEST(GenerateFleet, TimezoneSpreadShiftsAndWrapsPeaks) {
  ScenarioSpec spec;
  spec.num_users = 300;
  spec.diurnal.enabled = true;
  spec.diurnal.peak_hour = 22.0;
  spec.diurnal.timezone_spread_hours = 12.0;  // 16:00 .. 28:00 -> wraps
  std::set<double> peaks;
  for (const PerUserConfig& user : generate_fleet(spec, 17)) {
    EXPECT_GE(user.diurnal_peak_hour, 0.0);
    EXPECT_LT(user.diurnal_peak_hour, 24.0);
    peaks.insert(user.diurnal_peak_hour);
  }
  EXPECT_GT(peaks.size(), 100u);  // genuinely spread, not collapsed
}

TEST(GenerateFleet, LteFractionApportioned) {
  ScenarioSpec spec;
  spec.num_users = 40;
  spec.network.lte_fraction = 0.25;
  std::size_t lte = 0, wifi = 0;
  for (const PerUserConfig& user : generate_fleet(spec, 19)) {
    ASSERT_TRUE(user.use_lte.has_value());  // non-zero fraction pins all
    lte += *user.use_lte ? 1 : 0;
    wifi += *user.use_lte ? 0 : 1;
  }
  EXPECT_EQ(lte, 10u);
  EXPECT_EQ(wifi, 30u);
}

TEST(GenerateFleet, ChurnWindowsRespectPresenceBounds) {
  ScenarioSpec spec;
  spec.num_users = 100;
  spec.horizon_slots = 5000;
  spec.churn.churn_fraction = 0.3;
  spec.churn.min_presence = 0.2;
  spec.churn.max_presence = 0.5;
  std::size_t churners = 0;
  for (const PerUserConfig& user : generate_fleet(spec, 23)) {
    if (user.leave_slot == kNeverLeaves) {
      EXPECT_EQ(user.join_slot, 0);
      continue;
    }
    ++churners;
    const auto length = user.leave_slot - user.join_slot;
    EXPECT_GE(user.join_slot, 0);
    EXPECT_LE(user.leave_slot, 5000);
    EXPECT_GE(length, 999);   // 0.2 * 5000, llround slack
    EXPECT_LE(length, 2501);  // 0.5 * 5000
  }
  EXPECT_EQ(churners, 30u);
}

TEST(ValidateSpec, RejectsBadSpecs) {
  ScenarioSpec spec;
  spec.num_users = 0;
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.device_mix = {{device::DeviceKind::kPixel2, 0.5}};  // sums to 0.5
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.device_mix = {{device::DeviceKind::kPixel2, 0.5},
                     {device::DeviceKind::kPixel2, 0.5}};  // duplicate
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.arrival.distribution = ArrivalSpec::Distribution::kUniform;
  spec.arrival.min_probability = 0.5;
  spec.arrival.max_probability = 0.1;  // inverted bounds
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.churn.churn_fraction = 0.5;
  spec.churn.min_presence = 0.0;  // empty window possible
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.diurnal.peak_hour = 24.0;  // outside [0, 24)
  EXPECT_THROW(validate(spec), std::invalid_argument);
}

// ----------------------------------------------------------- driver side

TEST(ScenarioDriver, TrivialSpecMatchesHomogeneousGoldenPath) {
  // The acceptance contract: the default (homogeneous) scenario produces
  // bit-identical ExperimentResult fingerprints to the pre-scenario
  // config, for all four schedulers — i.e. expanding the trivial spec
  // through apply_scenario is a no-op on results.
  for (const auto kind :
       {core::SchedulerKind::kImmediate, core::SchedulerKind::kSyncSgd,
        core::SchedulerKind::kOffline, core::SchedulerKind::kOnline}) {
    core::ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.num_users = 10;
    cfg.horizon_slots = 1500;
    cfg.arrival_probability = 0.002;
    cfg.seed = 42;

    ScenarioSpec trivial;
    trivial.num_users = cfg.num_users;
    trivial.horizon_slots = cfg.horizon_slots;
    trivial.arrival.mean_probability = cfg.arrival_probability;
    const core::ExperimentConfig expanded = core::apply_scenario(trivial, cfg);
    ASSERT_EQ(expanded.per_user.size(), cfg.num_users);

    EXPECT_EQ(testing::fingerprint(core::run_experiment(expanded)),
              testing::fingerprint(core::run_experiment(cfg)))
        << core::scheduler_name(kind);
  }
}

TEST(ScenarioDriver, ApplyScenarioOwnsArrivalsAndNetwork) {
  // The spec owns the population outright: a leftover arrival trace or
  // LTE default in the base config must not silently survive the overlay.
  core::ExperimentConfig base;
  base.arrival_trace_path = "/tmp/leftover_usage.csv";
  base.use_lte = true;
  ScenarioSpec wifi_only;
  wifi_only.num_users = 5;
  wifi_only.network.lte_fraction = 0.0;
  const core::ExperimentConfig cfg = core::apply_scenario(wifi_only, base);
  EXPECT_TRUE(cfg.arrival_trace_path.empty());
  EXPECT_FALSE(cfg.use_lte);

  ScenarioSpec all_lte = wifi_only;
  all_lte.network.lte_fraction = 1.0;
  EXPECT_TRUE(core::apply_scenario(all_lte, base).use_lte);
}

TEST(ScenarioDriver, PerUserDevicePinEqualsFixedDevice) {
  // Pinning every user's device through per_user consumes the same RNG
  // stream as fixed_device (neither draws), so the runs are bit-identical.
  core::ExperimentConfig fixed;
  fixed.num_users = 6;
  fixed.horizon_slots = 1000;
  fixed.arrival_probability = 0.003;
  fixed.seed = 5;
  fixed.fixed_device = device::DeviceKind::kPixel2;

  core::ExperimentConfig per_user = fixed;
  per_user.fixed_device.reset();
  per_user.per_user.assign(per_user.num_users, PerUserConfig{});
  for (PerUserConfig& user : per_user.per_user) {
    user.device = device::DeviceKind::kPixel2;
  }

  EXPECT_EQ(testing::fingerprint(core::run_experiment(per_user)),
            testing::fingerprint(core::run_experiment(fixed)));
}

TEST(ScenarioDriver, ChurnRunsGreenUnderAllSchedulers) {
  // Users joining/leaving mid-horizon must not deadlock the sync barrier,
  // break the offline window planner, or wedge the Lyapunov queues.
  ScenarioSpec spec = heterogeneous_spec();
  spec.num_users = 20;
  spec.horizon_slots = 2500;
  for (const auto kind :
       {core::SchedulerKind::kImmediate, core::SchedulerKind::kSyncSgd,
        core::SchedulerKind::kOffline, core::SchedulerKind::kOnline}) {
    core::ExperimentConfig cfg;
    cfg.seed = 9;
    cfg.scheduler = kind;
    cfg = core::apply_scenario(spec, cfg);
    const core::ExperimentResult result = core::run_experiment(cfg);
    EXPECT_GT(result.total_updates, 0u) << core::scheduler_name(kind);
    EXPECT_GT(result.total_energy_j, 0.0) << core::scheduler_name(kind);
  }
}

TEST(ScenarioDriver, AbsentUsersBurnNoEnergy) {
  // A fleet where half the users are only present for the first tenth of
  // the horizon must spend strictly less energy than the always-on fleet.
  core::ExperimentConfig always_on;
  always_on.num_users = 10;
  always_on.horizon_slots = 2000;
  always_on.arrival_probability = 0.002;
  always_on.seed = 31;
  always_on.scheduler = core::SchedulerKind::kImmediate;

  core::ExperimentConfig churned = always_on;
  churned.per_user.assign(churned.num_users, PerUserConfig{});
  for (std::size_t i = 0; i < churned.per_user.size(); i += 2) {
    churned.per_user[i].leave_slot = 200;
  }

  const double full = core::run_experiment(always_on).total_energy_j;
  const double partial = core::run_experiment(churned).total_energy_j;
  EXPECT_LT(partial, 0.75 * full);
  EXPECT_GT(partial, 0.0);
}

TEST(ScenarioDriver, LateJoinersContributeUpdates) {
  core::ExperimentConfig cfg;
  cfg.num_users = 4;
  cfg.horizon_slots = 2000;
  cfg.arrival_probability = 0.002;
  cfg.seed = 12;
  cfg.scheduler = core::SchedulerKind::kImmediate;
  cfg.per_user.assign(cfg.num_users, PerUserConfig{});
  for (PerUserConfig& user : cfg.per_user) user.join_slot = 1000;
  const core::ExperimentResult result = core::run_experiment(cfg);
  EXPECT_GT(result.total_updates, 0u);
  // Nobody present before slot 1000: roughly half the always-on energy.
  core::ExperimentConfig always = cfg;
  always.per_user.clear();
  EXPECT_LT(result.total_energy_j,
            0.75 * core::run_experiment(always).total_energy_j);
}

TEST(ScenarioDriver, SyncBarrierReleasesDepartedUsers) {
  // Half the fleet departs early enough to be parked at the round barrier
  // (or mid-flight) when it leaves: rounds must still complete, and the
  // departed users must stop metering once their in-flight work drains —
  // strictly cheaper than the always-on fleet.
  core::ExperimentConfig cfg;
  cfg.scheduler = core::SchedulerKind::kSyncSgd;
  cfg.num_users = 4;
  cfg.horizon_slots = 3000;
  cfg.arrival_probability = 0.002;
  cfg.seed = 21;
  core::ExperimentConfig churned = cfg;
  churned.per_user.assign(churned.num_users, PerUserConfig{});
  churned.per_user[2].leave_slot = 400;
  churned.per_user[3].leave_slot = 400;
  const core::ExperimentResult partial = core::run_experiment(churned);
  EXPECT_GT(partial.total_updates, 0u);  // the barrier never deadlocks
  EXPECT_LT(partial.total_energy_j,
            core::run_experiment(cfg).total_energy_j);
}

TEST(ScenarioDriver, RejectsMalformedPerUser) {
  core::ExperimentConfig cfg;
  cfg.num_users = 4;
  cfg.horizon_slots = 100;
  cfg.per_user.assign(3, PerUserConfig{});  // wrong cardinality
  EXPECT_THROW((void)core::run_experiment(cfg), std::invalid_argument);

  cfg.per_user.assign(4, PerUserConfig{});
  cfg.per_user[1].join_slot = 50;
  cfg.per_user[1].leave_slot = 50;  // empty presence window
  EXPECT_THROW((void)core::run_experiment(cfg), std::invalid_argument);
}

TEST(AssignDevice, PinnedKindWinsWithoutDrawingAndUniformOtherwise) {
  util::Rng rng{1};
  const util::Rng untouched = rng;
  EXPECT_EQ(assign_device(device::DeviceKind::kNexus6P, rng),
            device::DeviceKind::kNexus6P);
  // No draw happened: the next uniform matches a pristine copy.
  util::Rng copy = untouched;
  EXPECT_EQ(rng(), copy());

  std::set<device::DeviceKind> seen;
  for (int i = 0; i < 200; ++i) seen.insert(assign_device(std::nullopt, rng));
  EXPECT_EQ(seen.size(), device::kDeviceKinds);
}

}  // namespace
}  // namespace fedco::scenario
