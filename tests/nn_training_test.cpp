// Network container, optimizer semantics (paper Eq. 1), model zoo, and
// end-to-end learning sanity.
#include <gtest/gtest.h>

#include <memory>

#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/zoo.hpp"
#include "util/rng.hpp"

namespace fedco::nn {
namespace {

TEST(NetworkTest, FlattenLoadRoundTrip) {
  util::Rng rng{7};
  Network net = make_mlp(10, 8, 3, rng);
  const auto flat = net.flatten_params();
  EXPECT_EQ(flat.size(), net.param_count());
  Network other = make_mlp(10, 8, 3, rng);  // different random init
  other.load_params(flat);
  EXPECT_EQ(other.flatten_params(), flat);
  // Wrong sizes rejected.
  std::vector<float> short_vec(flat.size() - 1);
  EXPECT_THROW(other.load_params(short_vec), std::invalid_argument);
  std::vector<float> long_vec(flat.size() + 1);
  EXPECT_THROW(other.load_params(long_vec), std::invalid_argument);
}

TEST(NetworkTest, CopyIsDeep) {
  util::Rng rng{11};
  Network net = make_mlp(4, 6, 2, rng);
  Network copy = net;
  auto params = copy.params();
  (*params[0])[0] += 1.0f;
  EXPECT_NE(net.flatten_params()[0], copy.flatten_params()[0]);
}

TEST(NetworkTest, SummaryMentionsLayersAndParams) {
  util::Rng rng{13};
  Network net = make_lenet_small(10, rng);
  const std::string s = net.summary();
  EXPECT_NE(s.find("conv"), std::string::npos);
  EXPECT_NE(s.find("dense"), std::string::npos);
  EXPECT_NE(s.find("params="), std::string::npos);
}

TEST(NetworkTest, AddNullLayerThrows) {
  Network net;
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(ZooTest, Lenet5ShapesFor32x32) {
  util::Rng rng{17};
  Network net = make_lenet5(10, rng);
  Tensor batch{{2, 3, 32, 32}};
  const Tensor logits = net.forward(batch);
  EXPECT_EQ(logits.dim(0), 2u);
  EXPECT_EQ(logits.dim(1), 10u);
  // 62,006 params: the classic LeNet-5-on-CIFAR parameterisation.
  EXPECT_EQ(net.param_count(), 62'006u);
}

TEST(ZooTest, LenetSmallShapesFor16x16) {
  util::Rng rng{19};
  Network net = make_lenet_small(10, rng);
  Tensor batch{{3, 3, 16, 16}};
  const Tensor logits = net.forward(batch);
  EXPECT_EQ(logits.dim(0), 3u);
  EXPECT_EQ(logits.dim(1), 10u);
}

TEST(ZooTest, MlpAcceptsImagesViaFlatten) {
  util::Rng rng{23};
  Network net = make_mlp(3 * 8 * 8, 16, 4, rng);
  Tensor batch{{2, 3, 8, 8}};
  const Tensor logits = net.forward(batch);
  EXPECT_EQ(logits.dim(1), 4u);
}

// ------------------------------------------------------------- optimizer

TEST(SgdMomentum, MatchesEquationOneByHand) {
  // One Dense(1->1) layer, no bias contribution: check
  //   v1 = (1-beta)*g1 ; theta1 = theta0 - eta*v1
  //   v2 = beta*v1 + (1-beta)*g2 ; theta2 = theta1 - eta*v2
  util::Rng rng{29};
  Network net;
  net.add(std::make_unique<Dense>(1, 1, rng));
  auto params = net.params();
  auto grads = net.grads();
  (*params[0])[0] = 1.0f;  // weight
  (*params[1])[0] = 0.0f;  // bias

  SgdMomentum opt{{0.1, 0.5, 0.0, 0.0}};

  (*grads[0])[0] = 2.0f;
  opt.step(net);
  // v = 0.5*0 + 0.5*2 = 1 ; theta = 1 - 0.1*1 = 0.9
  EXPECT_NEAR((*params[0])[0], 0.9f, 1e-6f);

  (*grads[0])[0] = 4.0f;
  opt.step(net);
  // v = 0.5*1 + 0.5*4 = 2.5 ; theta = 0.9 - 0.25 = 0.65
  EXPECT_NEAR((*params[0])[0], 0.65f, 1e-6f);
  EXPECT_NEAR(opt.momentum_norm(), 2.5, 1e-6);
}

TEST(SgdMomentum, ZeroMomentumIsPlainSgd) {
  util::Rng rng{31};
  Network net;
  net.add(std::make_unique<Dense>(1, 1, rng));
  auto params = net.params();
  auto grads = net.grads();
  (*params[0])[0] = 0.0f;
  SgdMomentum opt{{1.0, 0.0, 0.0, 0.0}};
  (*grads[0])[0] = 3.0f;
  opt.step(net);
  EXPECT_NEAR((*params[0])[0], -3.0f, 1e-6f);
}

TEST(SgdMomentum, WeightDecayShrinksParams) {
  util::Rng rng{37};
  Network net;
  net.add(std::make_unique<Dense>(1, 1, rng));
  auto params = net.params();
  (*params[0])[0] = 10.0f;
  SgdMomentum opt{{0.1, 0.0, 0.5, 0.0}};
  net.zero_grad();
  opt.step(net);  // grad = 0 + decay*theta = 5 ; theta = 10 - 0.5 = 9.5
  EXPECT_NEAR((*params[0])[0], 9.5f, 1e-5f);
}

TEST(SgdMomentum, GradClipBoundsStep) {
  util::Rng rng{41};
  Network net;
  net.add(std::make_unique<Dense>(1, 1, rng));
  auto params = net.params();
  auto grads = net.grads();
  (*params[0])[0] = 0.0f;
  SgdMomentum opt{{1.0, 0.0, 0.0, 1.0}};  // clip grads to norm 1
  (*grads[0])[0] = 100.0f;
  opt.step(net);
  EXPECT_NEAR((*params[0])[0], -1.0f, 1e-5f);
}

TEST(SgdMomentum, ResetClearsVelocity) {
  util::Rng rng{43};
  Network net;
  net.add(std::make_unique<Dense>(2, 2, rng));
  SgdMomentum opt{{0.1, 0.9, 0.0, 0.0}};
  auto grads = net.grads();
  for (auto* g : grads) g->fill(1.0f);
  opt.step(net);
  EXPECT_GT(opt.momentum_norm(), 0.0);
  opt.reset();
  EXPECT_EQ(opt.momentum_norm(), 0.0);
  EXPECT_TRUE(opt.flatten_momentum().empty());
}

// ------------------------------------------------------------- learning

TEST(Learning, MlpLearnsLinearlySeparableTask) {
  // Two Gaussian blobs; a tiny MLP must exceed 90% train accuracy quickly.
  util::Rng rng{47};
  Network net = make_mlp(2, 8, 2, rng);
  SgdMomentum opt{{0.05, 0.9, 0.0, 0.0}};
  const std::size_t batch = 32;
  double last_acc = 0.0;
  for (int step = 0; step < 200; ++step) {
    Tensor x{{batch, 2}};
    std::vector<std::size_t> y(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const bool positive = rng.bernoulli(0.5);
      y[i] = positive ? 1u : 0u;
      const double cx = positive ? 1.5 : -1.5;
      x.at2(i, 0) = static_cast<float>(rng.normal(cx, 0.5));
      x.at2(i, 1) = static_cast<float>(rng.normal(-cx, 0.5));
    }
    // MLP's leading Flatten accepts rank-2 input as-is.
    const LossResult r = net.train_batch(x.reshaped({batch, 2, 1, 1}), y);
    opt.step(net);
    last_acc = r.accuracy;
  }
  EXPECT_GT(last_acc, 0.9);
}

TEST(Learning, LossDecreasesOnFixedBatch) {
  util::Rng rng{53};
  Network net = make_lenet_small(4, rng);
  SgdMomentum opt{{0.05, 0.9, 0.0, 0.0}};
  Tensor x{{8, 3, 16, 16}};
  for (auto& v : x.flat()) v = static_cast<float>(rng.uniform());
  std::vector<std::size_t> y{0, 1, 2, 3, 0, 1, 2, 3};
  const double first = net.train_batch(x, y).loss;
  opt.step(net);
  double last = first;
  for (int i = 0; i < 30; ++i) {
    last = net.train_batch(x, y).loss;
    opt.step(net);
  }
  EXPECT_LT(last, first * 0.5);
}

}  // namespace
}  // namespace fedco::nn
