// Offline knapsack (Algorithm 1): DP optimality vs exhaustive search,
// capacity feasibility, greedy comparison, the Lemma 1 lag bound checked
// against a brute-force enumeration of all decision combinations, and the
// batched-engine solvers — incremental prefix reuse (bit-identical to the
// full DP) and the worker-sharded parallel DP (deterministic for any pool
// size).
#include <gtest/gtest.h>

#include <cmath>

#include "core/knapsack.hpp"
#include "core/offline_planner.hpp"
#include "device/profiles.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fedco::core {
namespace {

TEST(Knapsack, EmptyAndDegenerate) {
  EXPECT_EQ(solve_knapsack({}, 10.0).total_value, 0.0);
  const std::vector<KnapsackItem> items{{5.0, 2.0}};
  EXPECT_EQ(solve_knapsack(items, 0.0).total_value, 0.0);
  EXPECT_EQ(solve_knapsack(items, 10.0, 0).total_value, 0.0);
  EXPECT_THROW(solve_knapsack({{-1.0, 2.0}}, 10.0), std::invalid_argument);
  EXPECT_THROW(solve_knapsack({{1.0, -2.0}}, 10.0), std::invalid_argument);
}

TEST(Knapsack, TextbookInstance) {
  // values {60,100,120}, weights {10,20,30}, capacity 50 -> take {1,2} = 220.
  const std::vector<KnapsackItem> items{{60.0, 10.0}, {100.0, 20.0}, {120.0, 30.0}};
  const KnapsackSolution s = solve_knapsack(items, 50.0, 50);
  EXPECT_DOUBLE_EQ(s.total_value, 220.0);
  EXPECT_FALSE(s.selected[0]);
  EXPECT_TRUE(s.selected[1]);
  EXPECT_TRUE(s.selected[2]);
}

TEST(Knapsack, OverweightItemNeverSelected) {
  const std::vector<KnapsackItem> items{{1000.0, 100.0}, {1.0, 0.5}};
  const KnapsackSolution s = solve_knapsack(items, 10.0);
  EXPECT_FALSE(s.selected[0]);
  EXPECT_TRUE(s.selected[1]);
}

TEST(Knapsack, ZeroWeightItemsAreFree) {
  const std::vector<KnapsackItem> items{{3.0, 0.0}, {4.0, 0.0}, {5.0, 10.0}};
  const KnapsackSolution s = solve_knapsack(items, 10.0);
  EXPECT_DOUBLE_EQ(s.total_value, 12.0);
}

class KnapsackRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackRandom, DpMatchesExhaustiveAndRespectsCapacity) {
  util::Rng rng{GetParam()};
  const std::size_t n = 2 + rng.uniform_int(std::uint64_t{11});  // 2..12 items
  std::vector<KnapsackItem> items(n);
  for (auto& item : items) {
    item.value = rng.uniform(0.0, 100.0);
    item.weight = rng.uniform(0.1, 20.0);
  }
  const double capacity = rng.uniform(5.0, 60.0);

  const KnapsackSolution exact = solve_knapsack_exact(items, capacity);
  // Fine grid: ceil-rounding costs at most (n * capacity / grid) weight.
  const KnapsackSolution dp = solve_knapsack(items, capacity, 20000);
  const KnapsackSolution greedy = solve_knapsack_greedy(items, capacity);

  EXPECT_LE(dp.total_weight, capacity + 1e-9);
  EXPECT_LE(greedy.total_weight, capacity + 1e-9);
  // DP on a fine grid is within a hair of the continuous optimum and never
  // beats it.
  EXPECT_LE(dp.total_value, exact.total_value + 1e-9);
  EXPECT_GE(dp.total_value, 0.98 * exact.total_value);
  // Greedy never beats the optimum.
  EXPECT_LE(greedy.total_value, exact.total_value + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Knapsack, ExactRejectsLargeInstances) {
  std::vector<KnapsackItem> items(25, KnapsackItem{1.0, 1.0});
  EXPECT_THROW(solve_knapsack_exact(items, 10.0), std::invalid_argument);
}

// ------------------------------------------------- incremental solver

std::vector<KnapsackItem> random_items(util::Rng& rng, std::size_t n) {
  std::vector<KnapsackItem> items(n);
  for (auto& item : items) {
    item.value = rng.uniform(0.0, 50.0);
    item.weight = rng.uniform(0.0, 10.0);
  }
  return items;
}

class IncrementalKnapsack : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalKnapsack, MatchesFullSolveUnderArbitraryMutations) {
  // The incremental solver must be indistinguishable from a cold
  // solve_knapsack — identical selections and bitwise-identical totals —
  // no matter how the item list, capacity, or grid changed since the
  // previous call (prefix edits, suffix edits, growth, shrinkage).
  util::Rng rng{GetParam()};
  KnapsackSolver solver;
  std::vector<KnapsackItem> items =
      random_items(rng, 1 + rng.uniform_int(std::uint64_t{600}));
  double capacity = rng.uniform(5.0, 80.0);
  std::size_t grid = 200 + rng.uniform_int(std::uint64_t{400});
  for (int round = 0; round < 6; ++round) {
    const KnapsackSolution full = solve_knapsack(items, capacity, grid);
    const KnapsackSolution inc = solver.solve(items, capacity, grid);
    ASSERT_EQ(inc.selected, full.selected) << "seed=" << GetParam()
                                           << " round=" << round;
    EXPECT_EQ(inc.total_value, full.total_value);
    EXPECT_EQ(inc.total_weight, full.total_weight);
    // Mutate for the next round.
    switch (rng.uniform_int(std::uint64_t{5})) {
      case 0: {  // suffix edit (the case prefix reuse exists for)
        const std::size_t at = rng.uniform_int(items.size());
        items.resize(at);
        const auto grown = random_items(
            rng, 1 + rng.uniform_int(std::uint64_t{200}));
        items.insert(items.end(), grown.begin(), grown.end());
        break;
      }
      case 1:  // prefix edit
        items[rng.uniform_int(items.size())].weight = rng.uniform(0.0, 10.0);
        break;
      case 2:  // pure growth
        items.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 10.0)});
        break;
      case 3:  // capacity change invalidates the discretization
        capacity = rng.uniform(5.0, 80.0);
        break;
      default:  // grid change invalidates the discretization
        grid = 200 + rng.uniform_int(std::uint64_t{400});
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalKnapsack,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(IncrementalKnapsackReuse, SuffixEditResumesFromACheckpoint) {
  util::Rng rng{99};
  std::vector<KnapsackItem> items = random_items(rng, 700);
  KnapsackSolver solver;
  (void)solver.solve(items, 40.0, 500);
  EXPECT_EQ(solver.last_prefix_reused(), 0u);  // cold call
  // Same inputs: the whole item list is a reusable prefix (rounded down to
  // the checkpoint stride).
  (void)solver.solve(items, 40.0, 500);
  EXPECT_EQ(solver.last_prefix_reused(),
            (700 / KnapsackSolver::kCheckpointStride) *
                KnapsackSolver::kCheckpointStride);
  // A suffix edit keeps every checkpoint before the edit point.
  items[600].value += 1.0;
  (void)solver.solve(items, 40.0, 500);
  EXPECT_EQ(solver.last_prefix_reused(),
            (600 / KnapsackSolver::kCheckpointStride) *
                KnapsackSolver::kCheckpointStride);
  // A capacity change invalidates the discretization entirely.
  (void)solver.solve(items, 41.0, 500);
  EXPECT_EQ(solver.last_prefix_reused(), 0u);
}

// --------------------------------------------------- parallel solver

TEST(ParallelKnapsack, DeterministicAcrossPoolSizes) {
  // The sharded DP must return the identical solution for any worker
  // count (FEDCO_JOBS ∈ {1,2,8} in the scheduler-level test): shard
  // boundaries, merges, and tie-breaks are functions of the inputs alone.
  // Shard counts are forced >= 2 — 5000 items auto-resolve to a single
  // shard, which would skip the max-plus merge this test exists to pin
  // (merge chunking DOES vary with the pool size, so this is the path
  // where a worker-count dependence could hide).
  util::Rng rng{7};
  const std::vector<KnapsackItem> items = random_items(rng, 5000);
  const double capacity = 60.0;
  const std::size_t grid = 400;
  const KnapsackSolution serial = solve_knapsack(items, capacity, grid);
  for (const std::size_t shards : {2u, 5u}) {
    KnapsackSolution first;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      util::ThreadPool pool{threads};
      const KnapsackSolution parallel =
          solve_knapsack_parallel(items, capacity, grid, pool, shards);
      if (threads == 1) {
        first = parallel;
      } else {
        ASSERT_EQ(parallel.selected, first.selected)
            << threads << " threads, " << shards << " shards";
        EXPECT_EQ(parallel.total_value, first.total_value);
        EXPECT_EQ(parallel.total_weight, first.total_weight);
      }
      // Never infeasible, and never worse than the serial optimum beyond
      // floating-point association noise in the block value sums.
      EXPECT_LE(parallel.total_weight, capacity + 1e-9);
      EXPECT_NEAR(parallel.total_value, serial.total_value,
                  1e-9 * std::max(1.0, serial.total_value));
    }
  }
  // The auto shard count is a pure function of n: below one block's
  // worth (8192 items) it must match the grouped serial core, any pool.
  util::ThreadPool pool{8};
  const KnapsackSolution auto_sharded =
      solve_knapsack_parallel(items, capacity, grid, pool);
  const KnapsackSolution grouped =
      solve_knapsack_grouped(items, capacity, grid);
  EXPECT_EQ(auto_sharded.selected, grouped.selected);
}

TEST(ParallelKnapsack, ExplicitShardCountsAgree) {
  util::Rng rng{21};
  const std::vector<KnapsackItem> items = random_items(rng, 1500);
  util::ThreadPool pool{4};
  const KnapsackSolution serial = solve_knapsack(items, 25.0, 300);
  for (const std::size_t shards : {2u, 3u, 7u}) {
    const KnapsackSolution parallel =
        solve_knapsack_parallel(items, 25.0, 300, pool, shards);
    EXPECT_LE(parallel.total_weight, 25.0 + 1e-9) << shards << " shards";
    EXPECT_NEAR(parallel.total_value, serial.total_value,
                1e-9 * std::max(1.0, serial.total_value))
        << shards << " shards";
  }
}

TEST(ParallelKnapsack, SmallInputsTakeTheGroupedCoreExactly) {
  // Below one shard's worth of items the parallel entry point is the
  // serial grouped core — bitwise the same solution regardless of pool.
  util::Rng rng{3};
  const std::vector<KnapsackItem> items = random_items(rng, 200);
  util::ThreadPool pool{8};
  const KnapsackSolution serial = solve_knapsack(items, 15.0, 250);
  const KnapsackSolution grouped = solve_knapsack_grouped(items, 15.0, 250);
  const KnapsackSolution parallel =
      solve_knapsack_parallel(items, 15.0, 250, pool);
  EXPECT_EQ(parallel.selected, grouped.selected);
  EXPECT_EQ(parallel.total_value, grouped.total_value);
  EXPECT_EQ(parallel.total_weight, grouped.total_weight);
  EXPECT_LE(parallel.total_weight, 15.0 + 1e-9);
  EXPECT_NEAR(parallel.total_value, serial.total_value,
              1e-9 * std::max(1.0, serial.total_value));
}

class GroupedKnapsack : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupedKnapsack, MatchesThePerItemOptimumOnDuplicatedClasses) {
  // Grouping + binary splitting reaches exactly the same count
  // combinations as the per-item DP, so on instances with heavy (units,
  // value) duplication — the fleet shape it exists for — the optimum
  // value must agree (up to FP association in the class value products)
  // and the solution must stay feasible.
  util::Rng rng{GetParam()};
  const double values[] = {4.0, 7.5, 11.0, 19.0};  // few classes, like devices
  std::vector<KnapsackItem> items(50 + rng.uniform_int(std::uint64_t{300}));
  for (auto& item : items) {
    item.value = values[rng.uniform_int(std::uint64_t{4})];
    item.weight = 0.5 * static_cast<double>(1 + rng.uniform_int(std::uint64_t{12}));
  }
  const double capacity = rng.uniform(10.0, 60.0);
  const KnapsackSolution serial = solve_knapsack(items, capacity, 300);
  const KnapsackSolution grouped = solve_knapsack_grouped(items, capacity, 300);
  EXPECT_LE(grouped.total_weight, capacity + 1e-9);
  EXPECT_NEAR(grouped.total_value, serial.total_value,
              1e-9 * std::max(1.0, serial.total_value));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedKnapsack,
                         ::testing::Range<std::uint64_t>(1, 17));

// ----------------------------------------------------- adaptive grid

TEST(AdaptiveGrid, ScalesWithTheWindowBudget) {
  OfflinePlannerConfig cfg;
  cfg.knapsack_grid = 2000;
  EXPECT_EQ(effective_grid(cfg), 2000u);  // off by default
  cfg.adaptive_grid = true;
  cfg.lb = 1000.0;
  EXPECT_EQ(effective_grid(cfg), 1000u);  // one cell per budget unit
  cfg.lb = 1e-3;
  EXPECT_EQ(effective_grid(cfg), OfflinePlannerConfig::kMinAdaptiveGrid);
  cfg.lb = 1e9;
  EXPECT_EQ(effective_grid(cfg), 2000u);  // never finer than configured
  // A configured grid below the adaptive floor wins outright (adaptivity
  // only coarsens; this must not trip std::clamp's lo <= hi contract).
  cfg.knapsack_grid = 32;
  EXPECT_EQ(effective_grid(cfg), 32u);
}

// ------------------------------------------------------------- Lemma 1

/// Brute-force "true lag": for every combination of everyone's decisions
/// (start at begin or at app_arrival), count others finishing inside user
/// i's actual execution window; the maximum over combos must not exceed the
/// Lemma 1 bound.
std::size_t true_max_lag(const std::vector<UserWindow>& users, std::size_t i) {
  const std::size_t n = users.size();
  std::size_t worst = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    const double my_start = ((mask >> i) & 1U) != 0 ? users[i].app_arrival
                                                    : users[i].begin;
    const double my_end = my_start + users[i].duration;
    std::size_t lag = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double their_start = ((mask >> j) & 1U) != 0 ? users[j].app_arrival
                                                         : users[j].begin;
      const double their_end = their_start + users[j].duration;
      if (their_end >= my_start && their_end <= my_end) ++lag;
    }
    worst = std::max(worst, lag);
  }
  return worst;
}

class Lemma1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Property, BoundDominatesTrueLagForAllDecisions) {
  util::Rng rng{GetParam()};
  const std::size_t n = 3 + rng.uniform_int(std::uint64_t{6});  // 3..8 users
  std::vector<UserWindow> users(n);
  for (auto& u : users) {
    u.begin = rng.uniform(0.0, 500.0);
    u.app_arrival = u.begin + rng.uniform(0.0, 500.0);
    u.duration = rng.uniform(50.0, 400.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(lag_upper_bound(users, i), true_max_lag(users, i))
        << "seed=" << GetParam() << " user=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(Lemma1, NeverExceedsNMinusOne) {
  // The trivial bound of Sec. IV: lag <= n - 1.
  util::Rng rng{123};
  std::vector<UserWindow> users(10);
  for (auto& u : users) {
    u.begin = 0.0;
    u.app_arrival = 0.0;
    u.duration = 100.0;
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_LE(lag_upper_bound(users, i), users.size() - 1);
  }
}

TEST(Lemma1, DisjointWindowsGiveZero) {
  std::vector<UserWindow> users(3);
  for (std::size_t i = 0; i < 3; ++i) {
    users[i].begin = static_cast<double>(i) * 1000.0;
    users[i].app_arrival = users[i].begin;
    users[i].duration = 10.0;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lag_upper_bound(users, i), 0u);
  }
  EXPECT_THROW((void)lag_upper_bound(users, 5), std::out_of_range);
}

// ------------------------------------------------------- offline planner

OfflinePlannerConfig planner_config(double lb) {
  OfflinePlannerConfig cfg;
  cfg.lb = lb;
  cfg.window_slots = 500;
  cfg.epsilon = 0.05;
  cfg.eta = 0.05;
  cfg.beta = 0.9;
  return cfg;
}

TEST(OfflinePlanner, EmptyInput) {
  const auto plan = plan_window(0, {}, planner_config(100.0));
  EXPECT_TRUE(plan.plans.empty());
}

TEST(OfflinePlanner, RelaxedBudgetWaitsForApps) {
  // Paper Fig. 4a: with Lb = 1000 the offline solution acts like a greedy
  // always-wait-for-co-running scheme.
  std::vector<OfflineUserInput> users(5);
  for (std::size_t i = 0; i < users.size(); ++i) {
    users[i].dev = &device::profile(device::DeviceKind::kPixel2);
    users[i].next_arrival = static_cast<sim::Slot>(50 + 30 * i);
    users[i].arrival_app = device::AppKind::kMap;
    users[i].momentum_norm = 10.0;
  }
  const auto plan = plan_window(0, users, planner_config(1000.0));
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(plan.plans[i].action, OfflineAction::kWaitForApp);
    EXPECT_EQ(plan.plans[i].start_slot, *users[i].next_arrival);
  }
}

TEST(OfflinePlanner, TightBudgetSchedulesImmediately) {
  std::vector<OfflineUserInput> users(5);
  for (auto& u : users) {
    u.dev = &device::profile(device::DeviceKind::kPixel2);
    u.next_arrival = 100;
    u.arrival_app = device::AppKind::kMap;
    u.momentum_norm = 10.0;
    u.current_gap = 5.0;
  }
  // Budget too small for anyone's gap weight.
  const auto plan = plan_window(0, users, planner_config(1e-6));
  for (const auto& p : plan.plans) {
    EXPECT_EQ(p.action, OfflineAction::kScheduleNow);
  }
}

TEST(OfflinePlanner, NoArrivalSelectedMeansDefer) {
  std::vector<OfflineUserInput> users(2);
  users[0].dev = &device::profile(device::DeviceKind::kHikey970);
  users[1].dev = &device::profile(device::DeviceKind::kHikey970);
  // No arrivals at all: deferring saves (P_b - P_d) * d, still worth picking
  // under a relaxed budget.
  const auto plan = plan_window(0, users, planner_config(1000.0));
  for (const auto& p : plan.plans) {
    EXPECT_EQ(p.action, OfflineAction::kDefer);
  }
}

TEST(OfflinePlanner, StalenessBudgetIsRespected) {
  util::Rng rng{77};
  std::vector<OfflineUserInput> users(12);
  for (auto& u : users) {
    u.dev = &device::profile(static_cast<device::DeviceKind>(
        rng.uniform_int(device::kDeviceKinds)));
    if (rng.bernoulli(0.7)) {
      u.next_arrival = static_cast<sim::Slot>(rng.uniform_int(std::uint64_t{400}));
      u.arrival_app = static_cast<device::AppKind>(
          rng.uniform_int(device::kAppKinds));
    }
    u.current_gap = rng.uniform(0.0, 10.0);
    u.momentum_norm = rng.uniform(1.0, 15.0);
  }
  const double lb = 30.0;
  const auto plan = plan_window(0, users, planner_config(lb));
  EXPECT_LE(plan.knapsack.total_weight, lb + 1e-9);
  EXPECT_EQ(plan.lag_bounds.size(), users.size());
}

class LagBoundIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LagBoundIndexProperty, IndexMatchesNaiveScanExactly) {
  // The counting index must return the identical integer as the O(n) scan
  // for every user — including duplicated completion times (grouping),
  // interval endpoints (closed-interval edges), and overlapping candidate
  // intervals (the inclusion-exclusion path).
  util::Rng rng{GetParam()};
  std::vector<UserWindow> users(rng.uniform_int(std::uint64_t{60}) + 2);
  for (auto& u : users) {
    u.begin = 1000.0;  // plan_window gives every user the same window start
    // Few distinct durations (device/app profiles), arbitrary arrivals.
    u.duration = 50.0 * static_cast<double>(1 + rng.uniform_int(std::uint64_t{5}));
    u.app_arrival =
        u.begin + static_cast<double>(rng.uniform_int(std::uint64_t{500}));
  }
  const LagBoundIndex index{users};
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(index.bound(i), lag_upper_bound(users, i)) << "user " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LagBoundIndexProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(LagBoundIndexProperty, GeneralWindowsMatchNaiveScanExactly) {
  // Scattered begins (and arrivals that may precede them) disable the
  // shared-begin fast path; the general group-range path must return the
  // identical integers too.
  util::Rng rng{GetParam() * 7919};
  std::vector<UserWindow> users(rng.uniform_int(std::uint64_t{40}) + 2);
  for (auto& u : users) {
    u.begin = static_cast<double>(rng.uniform_int(std::uint64_t{300}));
    u.duration = 25.0 * static_cast<double>(1 + rng.uniform_int(std::uint64_t{6}));
    u.app_arrival =
        static_cast<double>(rng.uniform_int(std::uint64_t{600}));  // may be < begin
  }
  const LagBoundIndex index{users};
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(index.bound(i), lag_upper_bound(users, i)) << "user " << i;
  }
}

}  // namespace
}  // namespace fedco::core
