# CLI smoke test, run via ctest:
#   1. `fedco_sim --help` must exit 0 and print a usage string.
#   2. A tiny 60-slot online run must exit 0 and print a non-empty result.
# Invoked as: cmake -DFEDCO_SIM=<path-to-binary> -P cli_smoke_test.cmake

if(NOT DEFINED FEDCO_SIM)
  message(FATAL_ERROR "FEDCO_SIM (path to the fedco_sim binary) not set")
endif()

execute_process(
  COMMAND ${FEDCO_SIM} --help
  OUTPUT_VARIABLE help_out
  ERROR_VARIABLE help_err
  RESULT_VARIABLE help_rc
)
if(NOT help_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim --help exited with ${help_rc}:\n${help_out}${help_err}")
endif()
string(STRIP "${help_out}${help_err}" help_all)
if(help_all STREQUAL "")
  message(FATAL_ERROR "fedco_sim --help produced no output")
endif()

execute_process(
  COMMAND ${FEDCO_SIM} --scheduler online --horizon 60 --users 4 --seed 7
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err
  RESULT_VARIABLE run_rc
)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim 60-slot online run exited with ${run_rc}:\n${run_out}${run_err}")
endif()
string(STRIP "${run_out}" run_stripped)
if(run_stripped STREQUAL "")
  message(FATAL_ERROR "fedco_sim 60-slot online run produced no result output")
endif()

message(STATUS "cli_smoke_test OK")
