# CLI smoke test, run via ctest:
#   1. `fedco_sim --help` must exit 0 and print a usage string.
#   2. A tiny 60-slot online run must exit 0 and print a non-empty result.
#   3. --save-config / --config round-trip: a saved scenario reloads to the
#      byte-identical config and reproduces the byte-identical result
#      document of the flag-built run.
#   4. An unrecognised option (a probable typo) must exit non-zero.
#   5. The shipped example scenario specs (incl. the fault-injection
#      examples: regional_outage, congested_evenings, commute,
#      trace_replay) run green via --scenario; the --save-result archive
#      of a scenario run reloads through --config to the byte-identical
#      result document.
#   6. Observability: --events streams a parseable JSONL file and leaves
#      the result document byte-identical to the events-off run;
#      --save-summary writes a summary artifact; an unopenable events path
#      exits non-zero; --save-result with --replications archives one
#      document per replication.
#   7. Trace-driven fleets: a missing or malformed --arrival-trace-dir is
#      rejected up front with exit 2 and a path-bearing message.
# Invoked as: cmake -DFEDCO_SIM=<binary> -DFEDCO_SCENARIOS=<dir>
#             -P cli_smoke_test.cmake

if(NOT DEFINED FEDCO_SIM)
  message(FATAL_ERROR "FEDCO_SIM (path to the fedco_sim binary) not set")
endif()
if(NOT DEFINED FEDCO_SCENARIOS)
  message(FATAL_ERROR "FEDCO_SCENARIOS (examples/scenarios dir) not set")
endif()

execute_process(
  COMMAND ${FEDCO_SIM} --help
  OUTPUT_VARIABLE help_out
  ERROR_VARIABLE help_err
  RESULT_VARIABLE help_rc
)
if(NOT help_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim --help exited with ${help_rc}:\n${help_out}${help_err}")
endif()
string(STRIP "${help_out}${help_err}" help_all)
if(help_all STREQUAL "")
  message(FATAL_ERROR "fedco_sim --help produced no output")
endif()

execute_process(
  COMMAND ${FEDCO_SIM} --scheduler online --horizon 60 --users 4 --seed 7
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err
  RESULT_VARIABLE run_rc
)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim 60-slot online run exited with ${run_rc}:\n${run_out}${run_err}")
endif()
string(STRIP "${run_out}" run_stripped)
if(run_stripped STREQUAL "")
  message(FATAL_ERROR "fedco_sim 60-slot online run produced no result output")
endif()

# --- 3. config round-trip -------------------------------------------------
set(work_dir ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_roundtrip)
file(MAKE_DIRECTORY ${work_dir})
set(flags --scheduler online --horizon 120 --users 4 --seed 11 --V 8000)

execute_process(
  COMMAND ${FEDCO_SIM} ${flags} --save-config ${work_dir}/scenario.json
  RESULT_VARIABLE save_rc OUTPUT_QUIET ERROR_QUIET
)
if(NOT save_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim --save-config exited with ${save_rc}")
endif()

execute_process(
  COMMAND ${FEDCO_SIM} ${flags} --json ${work_dir}/from_flags.json
  RESULT_VARIABLE flags_rc OUTPUT_QUIET ERROR_QUIET
)
execute_process(
  COMMAND ${FEDCO_SIM} --config ${work_dir}/scenario.json
          --json ${work_dir}/from_config.json
  RESULT_VARIABLE config_rc OUTPUT_QUIET ERROR_QUIET
)
if(NOT flags_rc EQUAL 0 OR NOT config_rc EQUAL 0)
  message(FATAL_ERROR "round-trip runs exited with ${flags_rc}/${config_rc}")
endif()

file(READ ${work_dir}/from_flags.json from_flags)
file(READ ${work_dir}/from_config.json from_config)
if(NOT from_flags STREQUAL from_config)
  message(FATAL_ERROR "--config run did not reproduce the flag-built result")
endif()

# The saved config must also reload to the byte-identical config.
execute_process(
  COMMAND ${FEDCO_SIM} --config ${work_dir}/scenario.json
          --save-config ${work_dir}/scenario2.json
  RESULT_VARIABLE resave_rc OUTPUT_QUIET ERROR_QUIET
)
file(READ ${work_dir}/scenario.json scenario1)
file(READ ${work_dir}/scenario2.json scenario2)
if(NOT resave_rc EQUAL 0 OR NOT scenario1 STREQUAL scenario2)
  message(FATAL_ERROR "saved config did not reload to an identical config")
endif()

# --- 4. probable typos are fatal -------------------------------------------
execute_process(
  COMMAND ${FEDCO_SIM} --horizons 60 --users 4
  RESULT_VARIABLE typo_rc
  ERROR_VARIABLE typo_err
  OUTPUT_QUIET
)
if(typo_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim accepted the unknown option --horizons")
endif()
string(FIND "${typo_err}" "horizons" typo_mentioned)
if(typo_mentioned EQUAL -1)
  message(FATAL_ERROR "unknown-option error did not name the flag:\n${typo_err}")
endif()

# --- 5. example scenarios ---------------------------------------------------
foreach(spec churn heterogeneous_fleet global_diurnal homogeneous_paper
        regional_outage congested_evenings commute trace_replay vip_priority)
  execute_process(
    COMMAND ${FEDCO_SIM} --scenario ${FEDCO_SCENARIOS}/${spec}.json
            --scheduler online
    RESULT_VARIABLE spec_rc
    OUTPUT_VARIABLE spec_out
    ERROR_VARIABLE spec_err
  )
  if(NOT spec_rc EQUAL 0)
    message(FATAL_ERROR
      "fedco_sim --scenario ${spec}.json exited with ${spec_rc}:\n${spec_out}${spec_err}")
  endif()
endforeach()

# The churn-aware mode over the VIP fleet: the flag must parse, apply to
# both schedulers' configs, and run the priority fleet end to end.
foreach(sched offline online)
  execute_process(
    COMMAND ${FEDCO_SIM} --scenario ${FEDCO_SCENARIOS}/vip_priority.json
            --scheduler ${sched} --churn-aware
    RESULT_VARIABLE aware_rc
    OUTPUT_VARIABLE aware_out
    ERROR_VARIABLE aware_err
  )
  if(NOT aware_rc EQUAL 0)
    message(FATAL_ERROR
      "fedco_sim --churn-aware (${sched}) exited with ${aware_rc}:\n${aware_out}${aware_err}")
  endif()
endforeach()

# A --save-result archive of a scenario run embeds the expanded per-user
# config, so replaying the archive through --config reproduces the
# byte-identical result document.
execute_process(
  COMMAND ${FEDCO_SIM} --scenario ${FEDCO_SCENARIOS}/churn.json
          --scheduler offline --save-result ${work_dir}/scenario_archive.json
  RESULT_VARIABLE archive_rc OUTPUT_QUIET ERROR_QUIET
)
execute_process(
  COMMAND ${FEDCO_SIM} --config ${work_dir}/scenario_archive.json
          --save-result ${work_dir}/scenario_replay.json
  RESULT_VARIABLE replay_rc OUTPUT_QUIET ERROR_QUIET
)
if(NOT archive_rc EQUAL 0 OR NOT replay_rc EQUAL 0)
  message(FATAL_ERROR "scenario archive runs exited with ${archive_rc}/${replay_rc}")
endif()
file(READ ${work_dir}/scenario_archive.json archive_doc)
file(READ ${work_dir}/scenario_replay.json replay_doc)
if(NOT archive_doc STREQUAL replay_doc)
  message(FATAL_ERROR "--config replay of a scenario archive did not reproduce the run")
endif()

# --- 6. observability -------------------------------------------------------
# The event stream must not perturb the run: the --json documents of an
# events-on and an events-off invocation are byte-identical.
set(obs_flags --scheduler immediate --horizon 200 --users 6 --arrival-p 0.02
    --seed 3)
execute_process(
  COMMAND ${FEDCO_SIM} ${obs_flags} --json ${work_dir}/obs_off.json
  RESULT_VARIABLE obs_off_rc OUTPUT_QUIET ERROR_QUIET
)
execute_process(
  COMMAND ${FEDCO_SIM} ${obs_flags} --json ${work_dir}/obs_on.json
          --events ${work_dir}/events.jsonl --events-sample 2
          --save-summary ${work_dir}/summary.json
  RESULT_VARIABLE obs_on_rc OUTPUT_QUIET ERROR_QUIET
)
if(NOT obs_off_rc EQUAL 0 OR NOT obs_on_rc EQUAL 0)
  message(FATAL_ERROR "observability runs exited with ${obs_off_rc}/${obs_on_rc}")
endif()
file(READ ${work_dir}/obs_off.json obs_off_doc)
file(READ ${work_dir}/obs_on.json obs_on_doc)
if(NOT obs_off_doc STREQUAL obs_on_doc)
  message(FATAL_ERROR "--events perturbed the result document")
endif()
file(READ ${work_dir}/events.jsonl events_doc)
if(NOT events_doc MATCHES "\"e\":\"decision\"")
  message(FATAL_ERROR "event stream contains no decision events:\n${events_doc}")
endif()
file(READ ${work_dir}/summary.json summary_doc)
if(NOT summary_doc MATCHES "\"counts\"" OR NOT summary_doc MATCHES "\"timing\"")
  message(FATAL_ERROR "summary artifact is missing counts/timing:\n${summary_doc}")
endif()

# An unopenable events path is a hard error, not a silently dropped stream.
execute_process(
  COMMAND ${FEDCO_SIM} ${obs_flags}
          --events ${work_dir}/no-such-dir/events.jsonl
  RESULT_VARIABLE bad_events_rc ERROR_VARIABLE bad_events_err OUTPUT_QUIET
)
if(bad_events_rc EQUAL 0)
  message(FATAL_ERROR "fedco_sim accepted an unopenable --events path")
endif()
if(NOT bad_events_err MATCHES "events")
  message(FATAL_ERROR "unopenable --events error did not name the stream:\n${bad_events_err}")
endif()

# Campaigns archive one document per replication (out-r<k>.json).
execute_process(
  COMMAND ${FEDCO_SIM} ${obs_flags} --replications 2
          --save-result ${work_dir}/campaign.json
  RESULT_VARIABLE camp_rc OUTPUT_QUIET ERROR_QUIET
)
if(NOT camp_rc EQUAL 0)
  message(FATAL_ERROR "--save-result with --replications exited ${camp_rc}")
endif()
foreach(k 0 1)
  if(NOT EXISTS ${work_dir}/campaign-r${k}.json)
    message(FATAL_ERROR "campaign archive campaign-r${k}.json was not written")
  endif()
endforeach()

# --- 7. trace-dir failures --------------------------------------------------
# A missing trace directory fails fast (before the fleet is built) with
# exit 2 and an error naming the offending path.
execute_process(
  COMMAND ${FEDCO_SIM} --scheduler online --horizon 60 --users 4
          --arrival-trace-dir ${work_dir}/no-such-traces
  RESULT_VARIABLE no_dir_rc ERROR_VARIABLE no_dir_err OUTPUT_QUIET
)
if(NOT no_dir_rc EQUAL 2)
  message(FATAL_ERROR
    "missing --arrival-trace-dir exited ${no_dir_rc} (want 2):\n${no_dir_err}")
endif()
if(NOT no_dir_err MATCHES "no-such-traces")
  message(FATAL_ERROR
    "missing trace-dir error did not name the path:\n${no_dir_err}")
endif()

# A malformed trace CSV inside the directory is just as fatal, and the
# message pinpoints file and line.
set(bad_trace_dir ${work_dir}/bad_traces)
file(MAKE_DIRECTORY ${bad_trace_dir})
file(WRITE ${bad_trace_dir}/bad.csv "slot,app\n-5,Map\n")
execute_process(
  COMMAND ${FEDCO_SIM} --scheduler online --horizon 60 --users 4
          --arrival-trace-dir ${bad_trace_dir}
  RESULT_VARIABLE bad_csv_rc ERROR_VARIABLE bad_csv_err OUTPUT_QUIET
)
if(NOT bad_csv_rc EQUAL 2)
  message(FATAL_ERROR
    "malformed trace CSV exited ${bad_csv_rc} (want 2):\n${bad_csv_err}")
endif()
if(NOT bad_csv_err MATCHES "bad.csv")
  message(FATAL_ERROR
    "malformed trace-CSV error did not name the file:\n${bad_csv_err}")
endif()

message(STATUS "cli_smoke_test OK")
