// Finite-difference gradient checks for every layer and the loss — the
// correctness bedrock of the training substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

namespace fedco::nn {
namespace {

/// Scalar objective for gradient checking: sum of 0.5 * out^2 so that
/// dL/d(out) = out.
double objective(const Tensor& out) {
  double acc = 0.0;
  for (const float v : out.flat()) {
    acc += 0.5 * static_cast<double>(v) * static_cast<double>(v);
  }
  return acc;
}

Tensor random_input(const Shape& shape, util::Rng& rng) {
  Tensor t{shape};
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

/// Check dL/d(input) and dL/d(params) of `layer` against central differences.
void check_layer_gradients(Layer& layer, const Shape& in_shape,
                           util::Rng& rng, double tolerance = 2e-2) {
  Tensor input = random_input(in_shape, rng);

  // Analytic gradients.
  layer.zero_grad();
  Tensor out = layer.forward(input);
  Tensor grad_out{out.shape()};
  for (std::size_t i = 0; i < out.size(); ++i) grad_out[i] = out[i];
  const Tensor grad_in = layer.backward(grad_out);

  const float h = 1e-2f;

  // Input gradient.
  for (std::size_t i = 0; i < input.size(); i += std::max<std::size_t>(1, input.size() / 17)) {
    const float saved = input[i];
    input[i] = saved + h;
    const double plus = objective(layer.forward(input));
    input[i] = saved - h;
    const double minus = objective(layer.forward(input));
    input[i] = saved;
    const double numeric = (plus - minus) / (2.0 * static_cast<double>(h));
    EXPECT_NEAR(grad_in[i], numeric, tolerance)
        << layer.name() << " d/d(input[" << i << "])";
  }

  // Parameter gradients (re-run forward/backward to refresh caches after the
  // probing above).
  layer.zero_grad();
  out = layer.forward(input);
  for (std::size_t i = 0; i < out.size(); ++i) grad_out[i] = out[i];
  (void)layer.backward(grad_out);
  const auto params = layer.params();
  const auto grads = layer.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& theta = *params[p];
    const Tensor& analytic = *grads[p];
    for (std::size_t i = 0; i < theta.size();
         i += std::max<std::size_t>(1, theta.size() / 13)) {
      const float saved = theta[i];
      theta[i] = saved + h;
      const double plus = objective(layer.forward(input));
      theta[i] = saved - h;
      const double minus = objective(layer.forward(input));
      theta[i] = saved;
      const double numeric = (plus - minus) / (2.0 * static_cast<double>(h));
      EXPECT_NEAR(analytic[i], numeric, tolerance)
          << layer.name() << " d/d(param" << p << "[" << i << "])";
    }
  }
}

TEST(GradCheck, Dense) {
  util::Rng rng{101};
  Dense layer{7, 5, rng};
  check_layer_gradients(layer, {3, 7}, rng);
}

TEST(GradCheck, Conv2D) {
  util::Rng rng{103};
  Conv2D layer{2, 3, 3, 1, 0, rng};
  check_layer_gradients(layer, {2, 2, 6, 6}, rng);
}

TEST(GradCheck, Conv2DPaddedStrided) {
  util::Rng rng{107};
  Conv2D layer{1, 2, 3, 2, 1, rng};
  check_layer_gradients(layer, {2, 1, 7, 7}, rng);
}

TEST(GradCheck, ReLU) {
  util::Rng rng{109};
  ReLU layer;
  // Shift inputs away from the kink at zero for a clean finite difference.
  Tensor input = random_input({4, 6}, rng);
  for (auto& v : input.flat()) {
    if (std::abs(v) < 0.1f) v += v >= 0.0f ? 0.2f : -0.2f;
  }
  Tensor out = layer.forward(input);
  Tensor grad_out{out.shape()};
  for (std::size_t i = 0; i < out.size(); ++i) grad_out[i] = out[i];
  const Tensor grad_in = layer.backward(grad_out);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float saved = input[i];
    input[i] = saved + h;
    const double plus = objective(layer.forward(input));
    input[i] = saved - h;
    const double minus = objective(layer.forward(input));
    input[i] = saved;
    EXPECT_NEAR(grad_in[i], (plus - minus) / (2.0 * static_cast<double>(h)), 1e-2);
  }
}

TEST(GradCheck, Tanh) {
  util::Rng rng{113};
  Tanh layer;
  check_layer_gradients(layer, {3, 8}, rng);
}

TEST(GradCheck, MaxPool) {
  util::Rng rng{127};
  MaxPool2D layer{2};
  check_layer_gradients(layer, {2, 2, 4, 4}, rng);
}

TEST(GradCheck, AvgPool) {
  util::Rng rng{139};
  AvgPool2D layer{2};
  check_layer_gradients(layer, {2, 3, 4, 4}, rng);
}

TEST(AvgPoolSemantics, AveragesWindows) {
  AvgPool2D layer{2};
  Tensor img{{1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 6.0f}};
  const Tensor out = layer.forward(img);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 3.0f, 1e-6f);
  EXPECT_THROW(AvgPool2D{0}, std::invalid_argument);
}

TEST(DropoutSemantics, EvalModeIsIdentity) {
  util::Rng rng{149};
  Dropout layer{0.5, rng};
  layer.set_training(false);
  Tensor x = random_input({4, 8}, rng);
  const Tensor out = layer.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(out[i], x[i]);
  // Backward in eval mode passes the gradient through unchanged.
  const Tensor grad = layer.backward(out);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(grad[i], out[i]);
}

TEST(DropoutSemantics, TrainingPreservesExpectationAndMasksGradient) {
  util::Rng rng{151};
  Dropout layer{0.3, rng};
  Tensor x{{1, 10000}};
  x.fill(1.0f);
  const Tensor out = layer.forward(x);
  // Inverted dropout: E[out] == x.
  double mean_out = out.sum() / static_cast<double>(out.size());
  EXPECT_NEAR(mean_out, 1.0, 0.05);
  // Zeroed activations must have zeroed gradients.
  Tensor grad_out{out.shape()};
  grad_out.fill(1.0f);
  const Tensor grad_in = layer.backward(grad_out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == 0.0f) {
      EXPECT_EQ(grad_in[i], 0.0f);
    } else {
      EXPECT_GT(grad_in[i], 1.0f);  // scaled by 1/keep
    }
  }
  EXPECT_THROW(Dropout(1.0, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1, rng), std::invalid_argument);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  util::Rng rng{131};
  Tensor logits = random_input({4, 5}, rng);
  const std::vector<std::size_t> labels{0, 2, 4, 1};
  Tensor grad;
  (void)softmax_cross_entropy(logits, labels, grad);
  const float h = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    Tensor unused;
    logits[i] = saved + h;
    const double plus = softmax_cross_entropy(logits, labels, unused).loss;
    logits[i] = saved - h;
    const double minus = softmax_cross_entropy(logits, labels, unused).loss;
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2.0 * static_cast<double>(h)), 1e-3);
  }
}

TEST(GradCheck, WholeNetworkChainRule) {
  // Two-layer MLP: finite differences through Network::forward must match
  // the chained backward pass.
  util::Rng rng{137};
  Network net;
  net.add(std::make_unique<Dense>(6, 4, rng));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Dense>(4, 3, rng));
  Tensor input = random_input({2, 6}, rng);
  const std::vector<std::size_t> labels{1, 2};

  net.zero_grad();
  Tensor logits = net.forward(input);
  Tensor grad_logits;
  (void)softmax_cross_entropy(logits, labels, grad_logits);
  net.backward(grad_logits);

  const auto params = net.params();
  const auto grads = net.grads();
  const float h = 1e-2f;
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& theta = *params[p];
    for (std::size_t i = 0; i < theta.size();
         i += std::max<std::size_t>(1, theta.size() / 7)) {
      const float saved = theta[i];
      Tensor unused;
      theta[i] = saved + h;
      const double plus =
          softmax_cross_entropy(net.forward(input), labels, unused).loss;
      theta[i] = saved - h;
      const double minus =
          softmax_cross_entropy(net.forward(input), labels, unused).loss;
      theta[i] = saved;
      EXPECT_NEAR((*grads[p])[i],
                  (plus - minus) / (2.0 * static_cast<double>(h)), 2e-2);
    }
  }
}

}  // namespace
}  // namespace fedco::nn
