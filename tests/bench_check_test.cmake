# tools/bench_check behaviour test, run via ctest:
#   1. A candidate matching the baseline exits 0 and prints OK rows.
#   2. A candidate with a >20% slots/sec drop exits 1 and prints FAIL.
#   3. A row whose planner/knapsack_grid metadata changed (the offline
#      scheme's adaptive-grid tagging) is reported as SKIP — a grid change
#      is not a regression — even when its throughput cratered.
#   4. Rows present on only one side degrade to SKIP/NEW notices.
#   5. A fleet whose "rng" tag flipped (legacy <-> stream, the PR 6
#      counter-based arrival streams) SKIPs both its timing and RSS rows:
#      different RNG layouts sample different arrivals.
#   6. A fleet whose process_peak_rss_mib grew beyond --max-rss-growth-pct
#      exits 1 with a FAIL row; growth inside the tolerance stays OK.
#   7. Online rows carry a "g_mode" tag (sweep vs folded G(t) engines, the
#      PR 7 closed-form accumulators): an untagged baseline row paired
#      with a tagged candidate SKIPs (mode change, not a regression), and
#      when both documents tag their rows the matcher pairs them per
#      engine — a folded regression FAILs while the sweep row stays OK.
#   8. Rows measured with the JSONL event emitter attached carry an
#      "events": true tag (PR 8): when both documents tag their rows the
#      matcher pairs per tag (an events-on regression FAILs while the
#      events-off row stays OK), and a baseline events-on row whose
#      candidate lost the tag SKIPs — emitter on/off is a mode change.
#   10. Rows measured with the departure-aware scheduling mode on carry a
#      "churn_aware": true tag (PR 10): the matcher pairs per tag (a
#      churn-aware regression FAILs while the oblivious row stays OK),
#      and a baseline churn-aware row whose candidate lost the tag SKIPs
#      — the mode runs a different decision rule, not slower code.
# Invoked as: cmake -DBENCH_CHECK=<binary> -P bench_check_test.cmake

if(NOT DEFINED BENCH_CHECK)
  message(FATAL_ERROR "BENCH_CHECK (path to the bench_check binary) not set")
endif()

set(work_dir ${CMAKE_CURRENT_BINARY_DIR}/bench_check_test_docs)
file(MAKE_DIRECTORY ${work_dir})

# Two-row baseline: a plain row and an offline row tagged with planner
# metadata (grid 1000).
file(WRITE ${work_dir}/baseline.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Offline\",\"seconds\":0.5,\"slots_per_sec\":800.0,\"user_slots_per_sec\":80000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000}\
]}]}\n")

# 1. Identical candidate -> exit 0, OK rows.
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/baseline.json
          --candidate ${work_dir}/baseline.json
  OUTPUT_VARIABLE ok_out ERROR_VARIABLE ok_err RESULT_VARIABLE ok_rc
)
if(NOT ok_rc EQUAL 0)
  message(FATAL_ERROR "identical documents exited ${ok_rc}:\n${ok_out}${ok_err}")
endif()
if(NOT ok_out MATCHES "OK")
  message(FATAL_ERROR "identical documents printed no OK row:\n${ok_out}")
endif()

# 2. Regressed plain row -> exit 1, FAIL.
file(WRITE ${work_dir}/regressed.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":2.0,\"slots_per_sec\":300.0,\"user_slots_per_sec\":30000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Offline\",\"seconds\":0.5,\"slots_per_sec\":800.0,\"user_slots_per_sec\":80000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/baseline.json
          --candidate ${work_dir}/regressed.json
  OUTPUT_VARIABLE bad_out ERROR_VARIABLE bad_err RESULT_VARIABLE bad_rc
)
if(NOT bad_rc EQUAL 1)
  message(FATAL_ERROR "70% regression exited ${bad_rc} (want 1):\n${bad_out}${bad_err}")
endif()
if(NOT bad_out MATCHES "FAIL")
  message(FATAL_ERROR "regression printed no FAIL row:\n${bad_out}")
endif()

# 3. The offline row re-measured on a different grid (1000 -> 500) with a
#    90% slots/sec drop must SKIP, not FAIL: grid change, not regression.
#    The untouched Online row keeps the comparison non-empty -> exit 0.
file(WRITE ${work_dir}/regridded.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Offline\",\"seconds\":5.0,\"slots_per_sec\":80.0,\"user_slots_per_sec\":8000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"serial\",\"knapsack_grid\":500}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/baseline.json
          --candidate ${work_dir}/regridded.json
  OUTPUT_VARIABLE skip_out ERROR_VARIABLE skip_err RESULT_VARIABLE skip_rc
)
if(NOT skip_rc EQUAL 0)
  message(FATAL_ERROR "grid-changed row exited ${skip_rc} (want 0 — grid change is not a regression):\n${skip_out}${skip_err}")
endif()
if(NOT skip_out MATCHES "SKIP.*planner/grid changed")
  message(FATAL_ERROR "grid-changed row was not SKIPped:\n${skip_out}")
endif()
if(skip_out MATCHES "FAIL")
  message(FATAL_ERROR "grid-changed row FAILed instead of SKIPping:\n${skip_out}")
endif()

# 4. A candidate missing a baseline row (and adding a new one) degrades to
#    SKIP + NEW notices while the shared rows still gate -> exit 0.
file(WRITE ${work_dir}/regrown.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0}\
]},\
{\"num_users\":200,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":900.0,\"user_slots_per_sec\":180000.0,\"updates\":5,\"energy_kj\":1.0}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/baseline.json
          --candidate ${work_dir}/regrown.json
  OUTPUT_VARIABLE grow_out ERROR_VARIABLE grow_err RESULT_VARIABLE grow_rc
)
if(NOT grow_rc EQUAL 0)
  message(FATAL_ERROR "grid growth exited ${grow_rc} (want 0):\n${grow_out}${grow_err}")
endif()
if(NOT grow_out MATCHES "SKIP" OR NOT grow_out MATCHES "NEW")
  message(FATAL_ERROR "grid growth printed no SKIP/NEW notices:\n${grow_out}")
endif()

# 5. The baseline fleet re-measured under the stream RNG layout must SKIP
#    every row of that fleet (timing and RSS), even with cratered numbers.
#    A second untagged fleet keeps the comparison non-empty -> exit 0.
file(WRITE ${work_dir}/rng_base.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"rng\":\"legacy\",\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0}\
]},\
{\"num_users\":200,\"horizon_slots\":600,\"rng\":\"legacy\",\"wall_seconds\":1.0,\"process_peak_rss_mib\":12.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":900.0,\"user_slots_per_sec\":180000.0,\"updates\":5,\"energy_kj\":1.0}\
]}]}\n")
file(WRITE ${work_dir}/rng_flipped.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"rng\":\"stream\",\"wall_seconds\":9.0,\"process_peak_rss_mib\":90.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":5.0,\"slots_per_sec\":100.0,\"user_slots_per_sec\":10000.0,\"updates\":5,\"energy_kj\":1.0}\
]},\
{\"num_users\":200,\"horizon_slots\":600,\"rng\":\"legacy\",\"wall_seconds\":1.0,\"process_peak_rss_mib\":12.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":900.0,\"user_slots_per_sec\":180000.0,\"updates\":5,\"energy_kj\":1.0}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/rng_base.json
          --candidate ${work_dir}/rng_flipped.json
  OUTPUT_VARIABLE rng_out ERROR_VARIABLE rng_err RESULT_VARIABLE rng_rc
)
if(NOT rng_rc EQUAL 0)
  message(FATAL_ERROR "rng-flipped fleet exited ${rng_rc} (want 0 — mode change is not a regression):\n${rng_out}${rng_err}")
endif()
if(NOT rng_out MATCHES "SKIP.*rng layout changed")
  message(FATAL_ERROR "rng-flipped fleet was not SKIPped:\n${rng_out}")
endif()
if(rng_out MATCHES "FAIL")
  message(FATAL_ERROR "rng-flipped fleet FAILed instead of SKIPping:\n${rng_out}")
endif()

# 6a. Peak RSS grown beyond the default 50% tolerance -> exit 1, FAIL,
#     even though every timing row is unchanged.
file(WRITE ${work_dir}/bloated.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":30.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Offline\",\"seconds\":0.5,\"slots_per_sec\":800.0,\"user_slots_per_sec\":80000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/baseline.json
          --candidate ${work_dir}/bloated.json
  OUTPUT_VARIABLE rss_out ERROR_VARIABLE rss_err RESULT_VARIABLE rss_rc
)
if(NOT rss_rc EQUAL 1)
  message(FATAL_ERROR "tripled peak RSS exited ${rss_rc} (want 1):\n${rss_out}${rss_err}")
endif()
if(NOT rss_out MATCHES "FAIL.*peak RSS")
  message(FATAL_ERROR "tripled peak RSS printed no FAIL row:\n${rss_out}")
endif()

# 6b. The same candidate passes when the operator widens the tolerance.
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/baseline.json
          --candidate ${work_dir}/bloated.json --max-rss-growth-pct 300
  OUTPUT_VARIABLE wide_out ERROR_VARIABLE wide_err RESULT_VARIABLE wide_rc
)
if(NOT wide_rc EQUAL 0)
  message(FATAL_ERROR "widened RSS tolerance exited ${wide_rc} (want 0):\n${wide_out}${wide_err}")
endif()
if(NOT wide_out MATCHES "OK.*peak RSS")
  message(FATAL_ERROR "widened RSS tolerance printed no OK RSS row:\n${wide_out}")
endif()

# 7a. Untagged baseline online row vs a candidate measured under the
#     folded G(t) engine: SKIP even with cratered numbers (the tag-blind
#     fallback match pairs them, the g_mode check rejects the pair). The
#     untouched Immediate row keeps the comparison non-empty -> exit 0.
file(WRITE ${work_dir}/g_base_untagged.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Immediate\",\"seconds\":0.5,\"slots_per_sec\":900.0,\"user_slots_per_sec\":90000.0,\"updates\":5,\"energy_kj\":1.0}\
]}]}\n")
file(WRITE ${work_dir}/g_tagged.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":5.0,\"slots_per_sec\":100.0,\"user_slots_per_sec\":10000.0,\"updates\":5,\"energy_kj\":1.0,\"g_mode\":\"folded\"},\
{\"scheduler\":\"Immediate\",\"seconds\":0.5,\"slots_per_sec\":900.0,\"user_slots_per_sec\":90000.0,\"updates\":5,\"energy_kj\":1.0}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/g_base_untagged.json
          --candidate ${work_dir}/g_tagged.json
  OUTPUT_VARIABLE gmode_out ERROR_VARIABLE gmode_err RESULT_VARIABLE gmode_rc
)
if(NOT gmode_rc EQUAL 0)
  message(FATAL_ERROR "g_mode-flipped row exited ${gmode_rc} (want 0 — mode change is not a regression):\n${gmode_out}${gmode_err}")
endif()
if(NOT gmode_out MATCHES "SKIP.*engine changed")
  message(FATAL_ERROR "g_mode-flipped row was not SKIPped:\n${gmode_out}")
endif()
if(gmode_out MATCHES "FAIL")
  message(FATAL_ERROR "g_mode-flipped row FAILed instead of SKIPping:\n${gmode_out}")
endif()

# 7b. Both documents tagged: the matcher pairs rows per engine, so the
#     regressed folded row FAILs while the identical sweep row stays OK
#     (first-found matching would have compared folded against sweep).
file(WRITE ${work_dir}/g_base_both.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0,\"g_mode\":\"sweep\"},\
{\"scheduler\":\"Online\",\"seconds\":0.4,\"slots_per_sec\":1250.0,\"user_slots_per_sec\":125000.0,\"updates\":5,\"energy_kj\":1.0,\"g_mode\":\"folded\"}\
]}]}\n")
file(WRITE ${work_dir}/g_folded_regressed.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Online\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0,\"g_mode\":\"sweep\"},\
{\"scheduler\":\"Online\",\"seconds\":4.0,\"slots_per_sec\":125.0,\"user_slots_per_sec\":12500.0,\"updates\":5,\"energy_kj\":1.0,\"g_mode\":\"folded\"}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/g_base_both.json
          --candidate ${work_dir}/g_folded_regressed.json
  OUTPUT_VARIABLE pair_out ERROR_VARIABLE pair_err RESULT_VARIABLE pair_rc
)
if(NOT pair_rc EQUAL 1)
  message(FATAL_ERROR "regressed folded row exited ${pair_rc} (want 1):\n${pair_out}${pair_err}")
endif()
if(NOT pair_out MATCHES "FAIL.*folded")
  message(FATAL_ERROR "regressed folded row printed no FAIL:\n${pair_out}")
endif()
if(NOT pair_out MATCHES "OK.*sweep")
  message(FATAL_ERROR "identical sweep row was not compared OK:\n${pair_out}")
endif()

# 8a. Both documents carry events-off and events-on rows: the matcher
#     pairs per tag, so a regressed events-on row FAILs while the
#     identical events-off row stays OK.
file(WRITE ${work_dir}/ev_base.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Immediate\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Immediate\",\"seconds\":0.6,\"slots_per_sec\":950.0,\"user_slots_per_sec\":95000.0,\"updates\":5,\"energy_kj\":1.0,\"events\":true}\
]}]}\n")
file(WRITE ${work_dir}/ev_regressed.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Immediate\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0},\
{\"scheduler\":\"Immediate\",\"seconds\":6.0,\"slots_per_sec\":95.0,\"user_slots_per_sec\":9500.0,\"updates\":5,\"energy_kj\":1.0,\"events\":true}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/ev_base.json
          --candidate ${work_dir}/ev_regressed.json
  OUTPUT_VARIABLE ev_out ERROR_VARIABLE ev_err RESULT_VARIABLE ev_rc
)
if(NOT ev_rc EQUAL 1)
  message(FATAL_ERROR "regressed events-on row exited ${ev_rc} (want 1):\n${ev_out}${ev_err}")
endif()
if(NOT ev_out MATCHES "FAIL.*\\+events")
  message(FATAL_ERROR "regressed events-on row printed no FAIL:\n${ev_out}")
endif()
if(NOT ev_out MATCHES "OK  +100 users x 600 slots / Immediate: ")
  message(FATAL_ERROR "identical events-off row was not compared OK:\n${ev_out}")
endif()

# 8b. The candidate re-measured without the emitter: the baseline
#     events-on row pairs tag-blind with the events-off candidate and
#     SKIPs — emitter on/off is a mode change, not a regression. The
#     events-off pair keeps the comparison non-empty -> exit 0.
file(WRITE ${work_dir}/ev_untagged.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Immediate\",\"seconds\":0.5,\"slots_per_sec\":1000.0,\"user_slots_per_sec\":100000.0,\"updates\":5,\"energy_kj\":1.0}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/ev_base.json
          --candidate ${work_dir}/ev_untagged.json
  OUTPUT_VARIABLE evskip_out ERROR_VARIABLE evskip_err RESULT_VARIABLE evskip_rc
)
if(NOT evskip_rc EQUAL 0)
  message(FATAL_ERROR "events-tag-lost candidate exited ${evskip_rc} (want 0):\n${evskip_out}${evskip_err}")
endif()
if(NOT evskip_out MATCHES "SKIP.*event emitter changed")
  message(FATAL_ERROR "events-tag mismatch was not SKIPped:\n${evskip_out}")
endif()
if(evskip_out MATCHES "FAIL")
  message(FATAL_ERROR "events-tag mismatch FAILed instead of SKIPping:\n${evskip_out}")
endif()

# 10a. Both documents carry oblivious and churn-aware rows: the matcher
#      pairs per tag, so a regressed churn-aware row FAILs while the
#      identical oblivious row stays OK.
file(WRITE ${work_dir}/churn_base.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Offline\",\"seconds\":0.5,\"slots_per_sec\":800.0,\"user_slots_per_sec\":80000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000},\
{\"scheduler\":\"Offline\",\"seconds\":0.6,\"slots_per_sec\":750.0,\"user_slots_per_sec\":75000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000,\"churn_aware\":true}\
]}]}\n")
file(WRITE ${work_dir}/churn_regressed.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Offline\",\"seconds\":0.5,\"slots_per_sec\":800.0,\"user_slots_per_sec\":80000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000},\
{\"scheduler\":\"Offline\",\"seconds\":6.0,\"slots_per_sec\":75.0,\"user_slots_per_sec\":7500.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000,\"churn_aware\":true}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/churn_base.json
          --candidate ${work_dir}/churn_regressed.json
  OUTPUT_VARIABLE churn_out ERROR_VARIABLE churn_err RESULT_VARIABLE churn_rc
)
if(NOT churn_rc EQUAL 1)
  message(FATAL_ERROR "regressed churn-aware row exited ${churn_rc} (want 1):\n${churn_out}${churn_err}")
endif()
if(NOT churn_out MATCHES "FAIL.*\\+churn")
  message(FATAL_ERROR "regressed churn-aware row printed no FAIL:\n${churn_out}")
endif()
if(NOT churn_out MATCHES "OK  +100 users x 600 slots / Offline: ")
  message(FATAL_ERROR "identical oblivious row was not compared OK:\n${churn_out}")
endif()

# 10b. The candidate re-measured without the mode: the baseline
#      churn-aware row pairs tag-blind with the oblivious candidate and
#      SKIPs — departure-awareness on/off is a mode change, not a
#      regression. The oblivious pair keeps the comparison non-empty.
file(WRITE ${work_dir}/churn_untagged.json
"{\"bench\":\"scale\",\"smoke\":true,\"jobs\":1,\"timing\":\"serial\",\"seed\":1,\"fleets\":[\
{\"num_users\":100,\"horizon_slots\":600,\"wall_seconds\":1.0,\"process_peak_rss_mib\":10.0,\"schedulers\":[\
{\"scheduler\":\"Offline\",\"seconds\":0.5,\"slots_per_sec\":800.0,\"user_slots_per_sec\":80000.0,\"updates\":5,\"energy_kj\":1.0,\"planner\":\"parallel+adaptive\",\"knapsack_grid\":1000}\
]}]}\n")
execute_process(
  COMMAND ${BENCH_CHECK} --baseline ${work_dir}/churn_base.json
          --candidate ${work_dir}/churn_untagged.json
  OUTPUT_VARIABLE chskip_out ERROR_VARIABLE chskip_err RESULT_VARIABLE chskip_rc
)
if(NOT chskip_rc EQUAL 0)
  message(FATAL_ERROR "churn-tag-lost candidate exited ${chskip_rc} (want 0):\n${chskip_out}${chskip_err}")
endif()
if(NOT chskip_out MATCHES "SKIP.*churn-aware mode changed")
  message(FATAL_ERROR "churn-tag mismatch was not SKIPped:\n${chskip_out}")
endif()
if(chskip_out MATCHES "FAIL")
  message(FATAL_ERROR "churn-tag mismatch FAILed instead of SKIPping:\n${chskip_out}")
endif()

message(STATUS "bench_check behaviour test passed")
