// PR 5 batched hot-path engine parity: the batched online decide and the
// incremental offline replan are bit-identical to the scalar/cold
// reference paths (golden-fingerprint cross-checks over the parity
// scenario grid), and the parallel window plan is deterministic across
// FEDCO_JOBS worker counts. See docs/algorithms.md for the map of which
// test guards which hot-path algorithm.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "golden_fingerprint.hpp"

namespace fedco::core {
namespace {

constexpr SchedulerKind kAllKinds[] = {
    SchedulerKind::kImmediate, SchedulerKind::kSyncSgd, SchedulerKind::kOffline,
    SchedulerKind::kOnline};

TEST(BatchEngine, BatchedDecideMatchesScalarForAllSchemes) {
  // The decide_batch contract is strict sequential equivalence with the
  // per-user decide() loop. Flipping online_batch_decide must not move a
  // single bit of any observable, for any scheme (only the online scheme
  // overrides the hook; the others exercise the base-class fallback).
  for (const auto& scenario : testing::parity_scenarios()) {
    for (const SchedulerKind kind : kAllKinds) {
      ExperimentConfig batched = scenario.config;
      batched.scheduler = kind;
      batched.online_batch_decide = true;
      ExperimentConfig scalar = batched;
      scalar.online_batch_decide = false;
      EXPECT_EQ(testing::fingerprint(run_experiment(batched)),
                testing::fingerprint(run_experiment(scalar)))
          << scenario.name << " / " << scheduler_name(kind);
    }
  }
}

TEST(BatchEngine, IncrementalReplanMatchesColdPlans) {
  // KnapsackSolver prefix reuse replays exactly the DP operations a cold
  // solve performs, so window plans — and therefore whole runs — are
  // bit-identical with the incremental path on or off.
  for (const auto& scenario : testing::parity_scenarios()) {
    ExperimentConfig incremental = scenario.config;
    incremental.scheduler = SchedulerKind::kOffline;
    incremental.offline_incremental_replan = true;
    ExperimentConfig cold = incremental;
    cold.offline_incremental_replan = false;
    EXPECT_EQ(testing::fingerprint(run_experiment(incremental)),
              testing::fingerprint(run_experiment(cold)))
        << scenario.name;
  }
}

TEST(BatchEngine, ParallelPlanIsDeterministicAcrossJobs) {
  // The sharded window plan promises determinism in the config for any
  // FEDCO_JOBS value — shard boundaries and DP tie-breaks never depend on
  // the worker count. The fleet is sized past the auto-shard threshold
  // (16384 ready users -> 2 shards) so the max-plus merge — the one
  // stage whose internal chunking varies with the pool — actually runs
  // inside a real experiment, not just in the knapsack-level property
  // test.
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOffline;
  cfg.num_users = 17000;
  cfg.horizon_slots = 500;
  cfg.arrival_probability = 0.004;
  cfg.seed = 11;
  cfg.offline_parallel_plan = true;
  std::vector<std::uint64_t> prints;
  for (const char* jobs : {"1", "2", "8"}) {
    ASSERT_EQ(setenv("FEDCO_JOBS", jobs, 1), 0);
    prints.push_back(testing::fingerprint(run_experiment(cfg)));
  }
  ASSERT_EQ(unsetenv("FEDCO_JOBS"), 0);
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(BatchEngine, AdaptiveGridRunsAreDeterministic) {
  // The adaptive grid may legally diverge from the fixed-grid plan (it is
  // a different discretization), but it must stay a pure function of the
  // config — and composed with the parallel plan it must still be
  // deterministic across worker counts.
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOffline;
  cfg.num_users = 80;
  cfg.horizon_slots = 1500;
  cfg.arrival_probability = 0.004;
  cfg.seed = 23;
  cfg.offline_adaptive_grid = true;
  const std::uint64_t alone = testing::fingerprint(run_experiment(cfg));
  EXPECT_EQ(alone, testing::fingerprint(run_experiment(cfg)));
  cfg.offline_parallel_plan = true;
  std::vector<std::uint64_t> prints;
  for (const char* jobs : {"1", "8"}) {
    ASSERT_EQ(setenv("FEDCO_JOBS", jobs, 1), 0);
    prints.push_back(testing::fingerprint(run_experiment(cfg)));
  }
  ASSERT_EQ(unsetenv("FEDCO_JOBS"), 0);
  EXPECT_EQ(prints[0], prints[1]);
}

}  // namespace
}  // namespace fedco::core
