// util::ThreadPool: task execution, wait() semantics, concurrency, and
// destructor draining.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.hpp"

namespace fedco::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait();  // nothing submitted — must not deadlock
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Two tasks that rendezvous with each other can only finish if they run
  // on distinct workers at the same time.
  ThreadPool pool{2};
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return;
      std::this_thread::yield();
    }
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  pool.wait();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait(): destruction must still run everything already submitted.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ZeroMeansHardwareThreads) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), ThreadPool::hardware_threads());
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace fedco::util
