#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fit.hpp"
#include "analysis/theorem1.hpp"
#include "util/rng.hpp"

namespace fedco::analysis {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.samples, 4u);
}

TEST(FitLinear, NoisyLineHasHighR2) {
  util::Rng rng{5};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(-2.0 + 0.5 * xi + rng.normal(0.0, 0.05));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(FitLinear, Degenerates) {
  const LinearFit empty = fit_linear({}, {});
  EXPECT_EQ(empty.samples, 0u);
  const std::vector<double> one_x{3.0};
  const std::vector<double> one_y{7.0};
  const LinearFit single = fit_linear(one_x, one_y);
  EXPECT_EQ(single.slope, 0.0);
  EXPECT_EQ(single.intercept, 7.0);
  // Constant x: zero variance.
  const std::vector<double> cx{2.0, 2.0, 2.0};
  const std::vector<double> cy{1.0, 2.0, 3.0};
  const LinearFit flat = fit_linear(cx, cy);
  EXPECT_EQ(flat.slope, 0.0);
  EXPECT_NEAR(flat.intercept, 2.0, 1e-12);
}

TEST(FitReciprocal, RecoversTheorem1Shape) {
  // y = 3 + 100/x (P* = 3, B = 100).
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {10.0, 20.0, 50.0, 100.0, 500.0, 1000.0}) {
    x.push_back(v);
    y.push_back(3.0 + 100.0 / v);
  }
  const LinearFit fit = fit_reciprocal(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 100.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitReciprocal, SkipsNonPositiveX) {
  const std::vector<double> x{-1.0, 0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{99.0, 99.0, 5.0, 3.0, 2.0};
  const LinearFit fit = fit_reciprocal(x, y);
  EXPECT_EQ(fit.samples, 3u);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 1.0; v <= 20.0; v += 1.0) {
    x.push_back(v);
    y.push_back(std::exp(0.3 * v));  // nonlinear but strictly increasing
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-9);
  for (auto& value : y) value = -value;
  EXPECT_NEAR(spearman(x, y), -1.0, 1e-9);
}

TEST(Spearman, TiesAndDegenerates) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> tied{5.0, 5.0, 6.0, 6.0};
  EXPECT_GT(spearman(x, tied), 0.8);
  EXPECT_EQ(spearman(std::vector<double>{1.0}, std::vector<double>{1.0}), 0.0);
}

TEST(Theorem1Check, SyntheticCompliantSweepPasses) {
  std::vector<VSweepPoint> sweep;
  for (const double v : {500.0, 1000.0, 4000.0, 16000.0, 64000.0}) {
    VSweepPoint p;
    p.v = v;
    p.avg_power_w = 10.0 + 5000.0 / v;  // Eq. 24 shape
    p.avg_backlog = 2.0 + 0.01 * v;     // Eq. 25 shape
    sweep.push_back(p);
  }
  const Theorem1Report report = check_theorem1(sweep);
  EXPECT_TRUE(report.consistent);
  EXPECT_NEAR(report.pstar_estimate, 10.0, 0.1);
  EXPECT_NEAR(report.backlog_growth_per_v, 0.01, 1e-6);
}

TEST(Theorem1Check, ViolatingSweepFails) {
  std::vector<VSweepPoint> sweep;
  for (const double v : {500.0, 1000.0, 4000.0, 16000.0}) {
    VSweepPoint p;
    p.v = v;
    p.avg_power_w = 1.0 + v * 0.001;  // power GROWING in V: violation
    p.avg_backlog = 100.0 - v * 0.001;
    sweep.push_back(p);
  }
  EXPECT_FALSE(check_theorem1(sweep).consistent);
}

TEST(Theorem1Check, NeedsThreePoints) {
  std::vector<VSweepPoint> sweep(2);
  sweep[0].v = 1.0;
  sweep[1].v = 2.0;
  EXPECT_THROW((void)check_theorem1(sweep), std::invalid_argument);
  // V = 0 entries are ignored, not counted.
  std::vector<VSweepPoint> zeros(5);
  EXPECT_THROW((void)check_theorem1(zeros), std::invalid_argument);
}

}  // namespace
}  // namespace fedco::analysis
