#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace fedco::sim {
namespace {

TEST(ClockTest, AdvanceAndSeconds) {
  Clock clock{2.0};
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.seconds(), 0.0);
  clock.advance(3);
  EXPECT_EQ(clock.now(), 3);
  EXPECT_EQ(clock.seconds(), 6.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(ClockTest, SlotsForSecondsRoundsUp) {
  Clock clock{1.0};
  EXPECT_EQ(clock.slots_for_seconds(0.0), 0);
  EXPECT_EQ(clock.slots_for_seconds(-5.0), 0);
  EXPECT_EQ(clock.slots_for_seconds(1.0), 1);
  EXPECT_EQ(clock.slots_for_seconds(1.2), 2);
  EXPECT_EQ(clock.slots_for_seconds(204.0), 204);
  Clock half{0.5};
  EXPECT_EQ(half.slots_for_seconds(1.2), 3);
}

TEST(ClockTest, NonPositiveSlotLengthFallsBackToOne) {
  Clock clock{0.0};
  EXPECT_EQ(clock.slot_seconds(), 1.0);
}

TEST(EventQueueTest, FiresInSlotOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(5, [&fired](Slot) { fired.push_back(5); });
  q.schedule(1, [&fired](Slot) { fired.push_back(1); });
  q.schedule(3, [&fired](Slot) { fired.push_back(3); });
  EXPECT_EQ(q.run_until(10), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueueTest, SameSlotPreservesInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(7, [&fired, i](Slot) { fired.push_back(i); });
  }
  q.run_until(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&fired](Slot) { ++fired; });
  q.schedule(2, [&fired](Slot) { ++fired; });
  q.schedule(3, [&fired](Slot) { ++fired; });
  EXPECT_EQ(q.run_until(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_slot(), 3);
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue q;
  std::vector<Slot> fired;
  q.schedule(0, [&](Slot at) {
    fired.push_back(at);
    q.schedule(at, [&fired](Slot inner) { fired.push_back(inner + 100); });
    q.schedule(at + 2, [&fired](Slot inner) { fired.push_back(inner); });
  });
  q.run_until(5);
  EXPECT_EQ(fired, (std::vector<Slot>{0, 100, 2}));
}

TEST(EventQueueTest, ClearEmpties) {
  EventQueue q;
  q.schedule(1, [](Slot) {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run_until(100), 0u);
}

TEST(TraceRecorderTest, CreatesAndRecords) {
  TraceRecorder rec;
  rec.record("q", 0.0, 1.0);
  rec.record("q", 1.0, 2.0);
  rec.record("h", 0.0, 5.0);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_TRUE(rec.contains("q"));
  EXPECT_FALSE(rec.contains("x"));
  ASSERT_NE(rec.find("q"), nullptr);
  EXPECT_EQ(rec.find("q")->size(), 2u);
  EXPECT_EQ(rec.find("missing"), nullptr);
  const auto names = rec.names();
  EXPECT_EQ(names, (std::vector<std::string>{"h", "q"}));
}

}  // namespace
}  // namespace fedco::sim
