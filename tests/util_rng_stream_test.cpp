// Counter-based RNG (util/stream_rng.hpp) unit + property tests.
//
// StreamRng is the foundation of the 1M-user setup path: every arrival,
// device pick and runtime draw in stream mode is a pure function of
// (seed, user, concern, counter). These tests pin the four properties that
// the stream-equivalence battery builds on:
//   1. draws are independent of construction order and interleaving,
//   2. distinct (user, concern) streams are distinct and uncorrelated,
//   3. O(1) skip-ahead lands exactly where sequential draws would,
//   4. outputs are platform-independent (fixed-value pins, including the
//      published splitmix64 reference vector).
#include "util/stream_rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace fedco::util {
namespace {

TEST(StreamU64, MatchesSplitmix64Sequence) {
  // stream_u64(key, k) is defined as the (k+1)-th splitmix64 output from
  // initial state `key` — verify against the stateful generator itself.
  for (const std::uint64_t key : {0ULL, 42ULL, 0x5EEDC0DEULL, ~0ULL}) {
    std::uint64_t state = key;
    for (std::uint64_t k = 0; k < 64; ++k) {
      EXPECT_EQ(stream_u64(key, k), splitmix64(state))
          << "key=" << key << " counter=" << k;
    }
  }
}

TEST(StreamU64, CrossPlatformPins) {
  // Fixed values so a miscompiled shift/multiply (or an accidental change
  // to the mixing constants) fails loudly on every platform. The first pin
  // is the published splitmix64 reference output for seed 0.
  EXPECT_EQ(stream_u64(0, 0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(stream_u64(0, 1), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(stream_u64(0x5EEDC0DEULL, 0), 0x7D199C3B678CF977ULL);
  EXPECT_EQ(stream_u64(0x5EEDC0DEULL, 1000000), 0x459BF3DA752E9E39ULL);
}

TEST(StreamKey, CrossPlatformPins) {
  EXPECT_EQ(stream_key(42, 0, 0), 0x6310BF04D8207F46ULL);
  EXPECT_EQ(stream_key(42, 1, 0), 0x93BE8420BB55B94CULL);
  EXPECT_EQ(stream_key(42, 0, 2), 0xDDA7119926B6C0A1ULL);
  EXPECT_EQ(stream_key(1234, 999999, 1), 0xBA5235243585DC8CULL);
}

TEST(StreamKey, DistinctAcrossUsersConcernsAndSeeds) {
  // Every (seed, user, concern) triple in a dense block must land on its
  // own key: a collision would alias two users' usage patterns.
  std::set<std::uint64_t> keys;
  std::size_t count = 0;
  for (const std::uint64_t seed : {1ULL, 42ULL, 1234ULL}) {
    for (std::uint64_t user = 0; user < 200; ++user) {
      for (std::uint64_t concern = 0; concern < 3; ++concern) {
        keys.insert(stream_key(seed, user, concern));
        ++count;
      }
    }
  }
  EXPECT_EQ(keys.size(), count);
}

TEST(StreamRng, ConstructionOrderIndependence) {
  // Draws from one stream are identical whether the stream is consumed
  // alone, interleaved with other streams, or re-created later — the
  // property per-user fork() chains fundamentally lack.
  const std::uint64_t key_a = stream_key(7, 3, 0);
  const std::uint64_t key_b = stream_key(7, 11, 0);

  StreamRng alone{key_a};
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(alone());

  StreamRng a{key_a};
  StreamRng b{key_b};
  for (int i = 0; i < 32; ++i) {
    (void)b();  // interleave foreign draws
    EXPECT_EQ(a(), expected[static_cast<std::size_t>(i)]) << "draw " << i;
    (void)b();
  }

  // A cursor reconstructed mid-stream continues the same sequence.
  StreamRng resumed{key_a, 16};
  EXPECT_EQ(resumed(), expected[16]);
}

TEST(StreamRng, StreamIndependenceBetweenUserConcernPairs) {
  // Neighbouring streams must not be shifted copies of each other: check
  // that no 16-draw window of user 4's stream reproduces user 5's prefix,
  // and that concern streams of one user differ likewise.
  const auto prefix = [](std::uint64_t key, std::uint64_t from) {
    StreamRng rng{key, from};
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 16; ++i) out.push_back(rng());
    return out;
  };
  const auto base = prefix(stream_key(42, 5, 0), 0);
  for (std::uint64_t shift = 0; shift < 64; ++shift) {
    EXPECT_NE(prefix(stream_key(42, 4, 0), shift), base) << "shift " << shift;
    EXPECT_NE(prefix(stream_key(42, 5, 1), shift), base) << "shift " << shift;
  }
}

TEST(StreamRng, SkipAheadEqualsSequentialDraws) {
  const std::uint64_t key = stream_key(99, 17, 2);
  StreamRng sequential{key};
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 1000; ++i) draws.push_back(sequential());

  for (const std::uint64_t n : {0ULL, 1ULL, 63ULL, 500ULL, 999ULL}) {
    StreamRng skipped{key};
    skipped.skip(n);
    EXPECT_EQ(skipped.counter(), n);
    EXPECT_EQ(skipped(), draws[n]) << "skip(" << n << ")";
  }

  StreamRng positioned{key};
  positioned.set_counter(250);
  EXPECT_EQ(positioned(), draws[250]);
  EXPECT_EQ(positioned.counter(), 251);
  EXPECT_EQ(positioned.key(), key);
}

TEST(StreamRng, HelperAlgorithmsMatchRngBitMappings) {
  // uniform() must use Rng's exact mantissa mapping and uniform_int Rng's
  // exact Lemire reduction, so a distribution draw is a function of the raw
  // 64-bit outputs alone, not of which engine produced them.
  const std::uint64_t key = stream_key(1, 2, 3);
  StreamRng raw{key};
  StreamRng helper{key};
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t x = raw();
    EXPECT_DOUBLE_EQ(helper.uniform(),
                     static_cast<double>(x >> 11) * 0x1.0p-53);
  }
  // For n = 8 (the app-kind draw) Lemire's threshold is 0, so the result is
  // always the top bits of one draw: uniform_int(8) == (x * 8) >> 64.
  StreamRng raw8{key};
  StreamRng helper8{key};
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t x = raw8();
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(x) * 8u) >> 64);
    EXPECT_EQ(helper8.uniform_int(8), expected);
  }
}

TEST(StreamRng, UniformIntRangeAndInclusiveBounds) {
  StreamRng rng{stream_key(5, 5, 0)};
  for (int i = 0; i < 4096; ++i) {
    EXPECT_LT(rng.uniform_int(std::uint64_t{7}), 7u);
  }
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 4096; ++i) {
    const std::int64_t v = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StreamRng, UniformMomentsSanity) {
  // Coarse statistical smoke: the mean of 1e5 uniforms from any stream sits
  // near 1/2 (binding if the counter were accidentally reused or the mixer
  // degraded to low entropy).
  for (const std::uint64_t key :
       {stream_key(42, 0, 0), stream_key(42, 123456, 2)}) {
    StreamRng rng{key};
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
  }
}

}  // namespace
}  // namespace fedco::util
