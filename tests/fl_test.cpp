// Staleness metrics (Defs. 1-2, Eqs. 3-4, Eq. 12), parameter server, and
// federated client.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth_cifar.hpp"
#include "fl/client.hpp"
#include "fl/server.hpp"
#include "fl/staleness.hpp"
#include "nn/zoo.hpp"
#include "util/rng.hpp"

namespace fedco::fl {
namespace {

// ------------------------------------------------------------- staleness

TEST(MomentumAmplification, ClosedFormBasics) {
  EXPECT_DOUBLE_EQ(momentum_amplification(0.9, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(momentum_amplification(0.9, 1.0), 1.0);
  // l = 2: (1 - 0.81) / 0.1 = 1.9
  EXPECT_NEAR(momentum_amplification(0.9, 2.0), 1.9, 1e-12);
  // beta -> 1 limit is the lag itself.
  EXPECT_DOUBLE_EQ(momentum_amplification(1.0, 7.0), 7.0);
  // beta = 0: no momentum memory, amplification 1 for any positive lag.
  EXPECT_DOUBLE_EQ(momentum_amplification(0.0, 5.0), 1.0);
}

TEST(MomentumAmplification, MonotoneInLagAndBoundedByGeometricSum) {
  double prev = 0.0;
  for (double lag = 1.0; lag <= 50.0; ++lag) {
    const double amp = momentum_amplification(0.9, lag);
    EXPECT_GT(amp, prev);
    EXPECT_LE(amp, 1.0 / (1.0 - 0.9) + 1e-12);
    prev = amp;
  }
}

TEST(GradientGap, Equation4) {
  // g = eta * (1-beta^l)/(1-beta) * ||v||
  EXPECT_NEAR(gradient_gap(0.05, 0.9, 2.0, 10.0), 0.05 * 1.9 * 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(gradient_gap(0.05, 0.9, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(gradient_gap(0.05, 0.9, 3.0, 0.0), 0.0);
}

TEST(PredictWeights, MatchesMomentumRollout) {
  // Eq. (3) is the closed form of l decayed momentum steps
  //   theta_{k+1} = theta_k - eta * beta^k * v.
  const double eta = 0.1;
  const double beta = 0.8;
  const std::size_t l = 6;
  std::vector<float> theta{1.0f, -2.0f, 0.5f};
  const std::vector<float> v{0.3f, 0.1f, -0.7f};

  std::vector<float> rolled = theta;
  double decay = 1.0;
  for (std::size_t k = 0; k < l; ++k) {
    for (std::size_t i = 0; i < rolled.size(); ++i) {
      rolled[i] -= static_cast<float>(eta * decay * static_cast<double>(v[i]));
    }
    decay *= beta;
  }

  std::vector<float> predicted;
  predict_weights(theta, v, eta, beta, static_cast<double>(l), predicted);
  ASSERT_EQ(predicted.size(), rolled.size());
  for (std::size_t i = 0; i < rolled.size(); ++i) {
    EXPECT_NEAR(predicted[i], rolled[i], 1e-5);
  }
}

TEST(PredictWeights, SizeMismatchThrows) {
  std::vector<float> out;
  EXPECT_THROW(predict_weights(std::vector<float>{1.0f},
                               std::vector<float>{1.0f, 2.0f}, 0.1, 0.9, 1.0,
                               out),
               std::invalid_argument);
}

TEST(GapTracker, Equation12Dynamics) {
  GapTracker tracker{0.1};
  EXPECT_EQ(tracker.gap(), 0.0);
  tracker.accrue_idle();
  tracker.accrue_idle();
  EXPECT_NEAR(tracker.gap(), 0.2, 1e-12);
  tracker.on_schedule(0.05, 0.9, 2.0, 10.0);
  EXPECT_NEAR(tracker.gap(), 0.95, 1e-12);  // replaces, not adds
  tracker.on_update_applied();
  EXPECT_EQ(tracker.gap(), 0.0);
}

TEST(LagTracker, CountsIntermediateUpdates) {
  LagTracker tracker;
  const auto v0 = tracker.version();
  tracker.on_global_update();
  tracker.on_global_update();
  EXPECT_EQ(tracker.lag_since(v0), 2u);
  const auto v2 = tracker.version();
  tracker.on_global_update();
  EXPECT_EQ(tracker.lag_since(v2), 1u);
  EXPECT_EQ(tracker.lag_since(99), 0u);  // future version clamps to 0
}

TEST(SyntheticMomentumModel, DecaysTowardFloor) {
  SyntheticMomentumModel model{{12.0, 1.5, 40.0}};
  const double initial = model.momentum_norm();
  EXPECT_NEAR(initial, 12.0, 1e-12);
  for (int i = 0; i < 40; ++i) model.on_global_update();
  EXPECT_NEAR(model.momentum_norm(), 1.5 + (12.0 - 1.5) / 2.0, 1e-9);
  for (int i = 0; i < 100000; ++i) model.on_global_update();
  EXPECT_NEAR(model.momentum_norm(), 1.5, 0.01);
}

// ---------------------------------------------------------------- server

TEST(ParameterServer, AsyncReplaceSemantics) {
  ParameterServer server{{1.0f, 2.0f, 3.0f}, 0.1, 0.9};
  const GlobalModel before = server.download();
  EXPECT_EQ(before.version, 0u);

  const std::vector<float> update{4.0f, 6.0f, 3.0f};
  const UpdateReceipt receipt = server.submit_async(update, before.version);
  EXPECT_EQ(receipt.version, 1u);
  EXPECT_EQ(receipt.lag, 0u);
  EXPECT_NEAR(receipt.gradient_gap, 5.0, 1e-6);  // ||(3,4,0)||
  EXPECT_EQ(server.download().params, update);   // pure replacement (Sec. VI)
}

TEST(ParameterServer, LagOfInterleavedClients) {
  // Client A downloads, then B and C update; A's update has lag 2 (Fig. 3).
  ParameterServer server{{0.0f}, 0.1, 0.9};
  const auto a = server.download();
  (void)server.submit_async(std::vector<float>{1.0f}, server.download().version);
  (void)server.submit_async(std::vector<float>{2.0f}, server.download().version);
  const UpdateReceipt receipt =
      server.submit_async(std::vector<float>{3.0f}, a.version);
  EXPECT_EQ(receipt.lag, 2u);
}

TEST(ParameterServer, SyncAggregationAverages) {
  ParameterServer server{{0.0f, 0.0f}, 0.1, 0.9};
  server.stage_sync(std::vector<float>{2.0f, 4.0f});
  server.stage_sync(std::vector<float>{4.0f, 8.0f});
  EXPECT_EQ(server.staged(), 2u);
  const UpdateReceipt receipt = server.aggregate_sync();
  EXPECT_EQ(receipt.lag, 0u);
  const auto params = server.download().params;
  EXPECT_EQ(params, (std::vector<float>{3.0f, 6.0f}));
  EXPECT_EQ(server.staged(), 0u);
  EXPECT_EQ(server.version(), 1u);
}

TEST(ParameterServer, MomentumNormTracksDeltas) {
  ParameterServer server{{0.0f}, 0.5, 0.0};  // beta=0: v = delta/eta exactly
  EXPECT_EQ(server.momentum_norm(), 0.0);
  (void)server.submit_async(std::vector<float>{-1.0f}, 0);
  // delta = old - new = 1 ; v = 1/0.5 = 2.
  EXPECT_NEAR(server.momentum_norm(), 2.0, 1e-6);
}

TEST(ParameterServer, ErrorPaths) {
  EXPECT_THROW(ParameterServer({}, 0.1, 0.9), std::invalid_argument);
  EXPECT_THROW(ParameterServer({1.0f}, 0.0, 0.9), std::invalid_argument);
  ParameterServer server{{1.0f}, 0.1, 0.9};
  EXPECT_THROW(server.submit_async(std::vector<float>{1.0f, 2.0f}, 0),
               std::invalid_argument);
  EXPECT_THROW(server.stage_sync(std::vector<float>{1.0f, 2.0f}),
               std::invalid_argument);
  EXPECT_THROW(server.aggregate_sync(), std::logic_error);
}

TEST(ParameterServer, GapHistoryGrowsPerUpdate) {
  ParameterServer server{{0.0f}, 0.1, 0.9};
  (void)server.submit_async(std::vector<float>{1.0f}, 0);
  (void)server.submit_async(std::vector<float>{2.0f}, 1);
  EXPECT_EQ(server.gap_history().size(), 2u);
  EXPECT_NEAR(server.gap_history()[1], 1.0, 1e-6);
}

TEST(ParameterServer, MomentumEmaSmoothsAcrossUpdates) {
  // beta = 0.5: after two identical unit deltas, v = 0.5*v + 0.5*delta/eta
  // converges toward delta/eta = 10.
  ParameterServer server{{0.0f}, 0.1, 0.5};
  double previous = 0.0;
  float value = 0.0f;
  for (int i = 0; i < 10; ++i) {
    value -= 1.0f;
    (void)server.submit_async(std::vector<float>{value},
                              server.download().version);
    EXPECT_GE(server.momentum_norm(), previous);
    previous = server.momentum_norm();
  }
  EXPECT_NEAR(server.momentum_norm(), 10.0, 0.2);
  // A reversal shrinks the smoothed momentum.
  value += 1.0f;
  (void)server.submit_async(std::vector<float>{value},
                            server.download().version);
  EXPECT_LT(server.momentum_norm(), previous);
}

TEST(ParameterServer, MomentumEstimateSpanMatchesParamCount) {
  ParameterServer server{{0.0f, 0.0f, 0.0f}, 0.1, 0.9};
  EXPECT_EQ(server.momentum_estimate().size(), 3u);
  (void)server.submit_async(std::vector<float>{1.0f, 2.0f, 3.0f}, 0);
  // Estimate usable by predict_weights without size mismatch.
  std::vector<float> predicted;
  predict_weights(server.download().params, server.momentum_estimate(), 0.1,
                  0.9, 4.0, predicted);
  EXPECT_EQ(predicted.size(), 3u);
}

// ---------------------------------------------------------------- client

data::SynthCifar tiny_data() {
  data::SynthCifarConfig cfg;
  cfg.classes = 3;
  cfg.height = 8;
  cfg.width = 8;
  cfg.train_per_class = 12;
  cfg.test_per_class = 6;
  cfg.seed = 5;
  return data::make_synth_cifar(cfg);
}

TEST(FlClientTest, LocalEpochRunsAllBatches) {
  const auto ds = tiny_data();
  util::Rng rng{7};
  nn::Network model = nn::make_mlp(ds.train.image_volume(), 16, 3, rng);
  FlClient client{0, ds.train, model, {0.05, 0.9, 0.0, 0.0}, 11};
  const LocalEpochResult r = client.train_local_epoch(10);
  EXPECT_EQ(r.batches, 4u);  // 36 samples / batch 10 -> 4 batches
  EXPECT_GT(r.momentum_norm, 0.0);
  EXPECT_GT(r.mean_loss, 0.0);
}

TEST(FlClientTest, LoadGlobalRoundTrip) {
  const auto ds = tiny_data();
  util::Rng rng{13};
  nn::Network model = nn::make_mlp(ds.train.image_volume(), 16, 3, rng);
  const auto initial = model.flatten_params();
  FlClient client{1, ds.train, model, {0.05, 0.9, 0.0, 0.0}, 17};
  (void)client.train_local_epoch(12);
  EXPECT_NE(client.upload(), initial);  // training moved the params
  client.load_global(initial);
  EXPECT_EQ(client.upload(), initial);
}

TEST(FlClientTest, RepeatedEpochsReduceLoss) {
  const auto ds = tiny_data();
  util::Rng rng{19};
  nn::Network model = nn::make_mlp(ds.train.image_volume(), 24, 3, rng);
  FlClient client{2, ds.train, model, {0.05, 0.9, 0.0, 0.0}, 23};
  const double first = client.train_local_epoch(12).mean_loss;
  double last = first;
  for (int i = 0; i < 8; ++i) last = client.train_local_epoch(12).mean_loss;
  EXPECT_LT(last, first);
}

TEST(FlClientTest, EmptyShardRejected) {
  util::Rng rng{29};
  nn::Network model = nn::make_mlp(4, 4, 2, rng);
  EXPECT_THROW(
      FlClient(0, data::Dataset{1, 2, 2}, model, {0.05, 0.9, 0.0, 0.0}, 1),
      std::invalid_argument);
}

TEST(EvaluateParams, ScoresAboveChanceAfterTraining) {
  const auto ds = tiny_data();
  util::Rng rng{31};
  nn::Network model = nn::make_mlp(ds.train.image_volume(), 24, 3, rng);
  FlClient client{3, ds.train, model, {0.05, 0.9, 0.0, 0.0}, 37};
  for (int i = 0; i < 15; ++i) (void)client.train_local_epoch(12);
  const EvalResult eval = evaluate_params(model, client.upload(), ds.test);
  EXPECT_GT(eval.accuracy, 1.0 / 3.0);
  const EvalResult empty = evaluate_params(model, client.upload(),
                                           data::Dataset{3, 8, 8});
  EXPECT_EQ(empty.accuracy, 0.0);
}

}  // namespace
}  // namespace fedco::fl
