// ExperimentConfig <-> JSON round-trip: equality after reload, identical
// seeded results, token vocabularies, strict unknown-key handling, and
// loading from a full result document.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/config_io.hpp"
#include "core/result_io.hpp"
#include "golden_fingerprint.hpp"

namespace fedco::core {
namespace {

ExperimentConfig exotic_config() {
  // Deviate from every default to make the round-trip meaningful.
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOffline;
  cfg.num_users = 7;
  cfg.horizon_slots = 1234;
  cfg.slot_seconds = 0.5;
  cfg.seed = 987654321;
  cfg.arrival_probability = 0.0123;
  cfg.diurnal = true;
  cfg.diurnal_swing = 0.63;
  cfg.arrival_trace_path = "/tmp/some trace \"quoted\".csv";
  cfg.fixed_device = device::DeviceKind::kHikey970;
  cfg.V = 12345.5;
  cfg.lb = 321.25;
  cfg.epsilon = 0.0625;
  cfg.offline_window_slots = 250;
  cfg.offline_lb = 456.5;
  cfg.eta = 0.07;
  cfg.beta = 0.85;
  cfg.real_training = true;
  cfg.model = ModelKind::kLenet5;
  cfg.aggregation.kind = fl::AggregationKind::kDelayComp;
  cfg.aggregation.fedasync_alpha0 = 0.7;
  cfg.aggregation.fedasync_decay = 0.4;
  cfg.aggregation.delay_comp_lambda = 0.3;
  cfg.dirichlet_alpha = 0.9;
  cfg.gap_aware_lr = true;
  cfg.weight_prediction = true;
  cfg.batch_size = 13;
  cfg.dataset.classes = 5;
  cfg.dataset.channels = 1;
  cfg.dataset.height = 12;
  cfg.dataset.width = 14;
  cfg.dataset.train_per_class = 33;
  cfg.dataset.test_per_class = 9;
  cfg.dataset.noise_stddev = 0.31;
  cfg.dataset.jitter_brightness = 0.11;
  cfg.dataset.max_shift = 3;
  cfg.dataset.seed = 77;
  cfg.eval_interval_s = 111.5;
  cfg.model_bytes = 1'000'001;
  cfg.use_lte = true;
  cfg.decision_eval_seconds = 0.015;
  cfg.decision_interval_slots = 7;
  cfg.upload_drop_probability = 0.05;
  cfg.track_battery = true;
  cfg.battery.capacity_mah = 1800.5;
  cfg.battery.voltage_v = 3.7;
  cfg.battery.initial_soc = 0.95;
  cfg.battery.recharge_at_soc = 0.2;
  cfg.min_soc_to_train = 0.25;
  cfg.enable_thermal = true;
  cfg.thermal.ambient_c = 22.5;
  cfg.thermal.throttle_onset_c = 44.0;
  cfg.thermal.critical_c = 64.0;
  cfg.thermal.heating_c_per_joule = 0.07;
  cfg.thermal.cooling_fraction_per_s = 0.018;
  cfg.thermal.max_slowdown = 2.5;
  cfg.record_interval = 4;
  cfg.record_per_user_gaps = true;
  cfg.per_user.assign(7, scenario::PerUserConfig{});
  cfg.per_user[0].device = device::DeviceKind::kNexus6;
  cfg.per_user[1].arrival_probability = 0.0042;
  cfg.per_user[2].diurnal = true;
  cfg.per_user[2].diurnal_swing = 0.55;
  cfg.per_user[2].diurnal_peak_hour = 7.25;
  cfg.per_user[3].use_lte = false;  // explicit false must survive reload
  cfg.per_user[4].join_slot = 100;
  cfg.per_user[4].leave_slot = 900;
  // per_user[5] and [6] stay all-default ({} in JSON).
  return cfg;
}

TEST(ConfigIo, RoundTripYieldsEqualConfig) {
  const ExperimentConfig original = exotic_config();
  const ExperimentConfig reloaded =
      config_from_json(config_to_json(original));
  EXPECT_TRUE(reloaded == original);
}

TEST(ConfigIo, DefaultConfigRoundTrips) {
  EXPECT_TRUE(config_from_json(config_to_json(ExperimentConfig{})) ==
              ExperimentConfig{});
}

TEST(ConfigIo, RoundTripReproducesSeededResult) {
  // The --config acceptance contract: a saved config reloads to the same
  // seeded run, bit for bit.
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOnline;
  cfg.num_users = 6;
  cfg.horizon_slots = 800;
  cfg.arrival_probability = 0.004;
  cfg.seed = 77;
  cfg.V = 1234.5;
  const ExperimentConfig reloaded = config_from_json(config_to_json(cfg));
  ASSERT_TRUE(reloaded == cfg);
  EXPECT_EQ(testing::fingerprint(run_experiment(reloaded)),
            testing::fingerprint(run_experiment(cfg)));
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = "/tmp/fedco_config_io_test.json";
  const ExperimentConfig original = exotic_config();
  save_config_json(path, original);
  EXPECT_TRUE(load_config_json(path) == original);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_config_json("/no/such/config.json"),
               std::runtime_error);
}

TEST(ConfigIo, PartialDocumentKeepsDefaults) {
  const ExperimentConfig cfg =
      config_from_json(R"({"scheduler":"offline","num_users":3,"V":9.5})");
  EXPECT_EQ(cfg.scheduler, SchedulerKind::kOffline);
  EXPECT_EQ(cfg.num_users, 3u);
  EXPECT_EQ(cfg.V, 9.5);
  ExperimentConfig defaults;
  EXPECT_EQ(cfg.horizon_slots, defaults.horizon_slots);
  EXPECT_EQ(cfg.lb, defaults.lb);
  EXPECT_TRUE(cfg.dataset == defaults.dataset);
}

TEST(ConfigIo, UnknownKeysThrow) {
  EXPECT_THROW((void)config_from_json(R"({"horizons":100})"),
               std::invalid_argument);
  EXPECT_THROW((void)config_from_json(R"({"dataset":{"heigth":8}})"),
               std::invalid_argument);
  EXPECT_THROW((void)config_from_json(R"({"num_users":"ten"})"),
               std::invalid_argument);
  EXPECT_THROW((void)config_from_json(R"({"num_users":2.5})"),
               std::invalid_argument);
}

TEST(ConfigIo, PerUserEntriesAreStrict) {
  // per_user rides the same strictness contract as the rest of the config.
  EXPECT_THROW((void)config_from_json(R"({"per_user":{}})"),
               std::invalid_argument);  // must be an array
  EXPECT_THROW((void)config_from_json(R"({"per_user":[{"devise":"pixel2"}]})"),
               std::invalid_argument);  // typo'd key
  EXPECT_THROW((void)config_from_json(R"({"per_user":[{"device":"iphone"}]})"),
               std::invalid_argument);  // unknown device
  EXPECT_THROW(
      (void)config_from_json(R"({"per_user":[{"join_slot":"soon"}]})"),
      std::invalid_argument);
  const ExperimentConfig cfg = config_from_json(
      R"({"num_users":2,"per_user":[{},{"device":"hikey970","leave_slot":50}]})");
  ASSERT_EQ(cfg.per_user.size(), 2u);
  EXPECT_TRUE(cfg.per_user[0].is_default());
  EXPECT_EQ(cfg.per_user[1].device, device::DeviceKind::kHikey970);
  EXPECT_EQ(cfg.per_user[1].leave_slot, 50);
}

TEST(ConfigIo, PerUserRoundTripReproducesSeededResult) {
  // A heterogeneous (device-pinned + churned) config survives the JSON
  // round trip bit-for-bit, including the seeded run it produces.
  ExperimentConfig cfg;
  cfg.num_users = 5;
  cfg.horizon_slots = 700;
  cfg.arrival_probability = 0.004;
  cfg.seed = 123;
  cfg.per_user.assign(5, scenario::PerUserConfig{});
  cfg.per_user[0].device = device::DeviceKind::kPixel2;
  cfg.per_user[1].use_lte = true;
  cfg.per_user[2].leave_slot = 350;
  cfg.per_user[3].arrival_probability = 0.01;
  const ExperimentConfig reloaded = config_from_json(config_to_json(cfg));
  ASSERT_TRUE(reloaded == cfg);
  EXPECT_EQ(testing::fingerprint(run_experiment(reloaded)),
            testing::fingerprint(run_experiment(cfg)));
}

TEST(ConfigIo, OutOfRangeIntegersThrow) {
  // Integers travel as doubles; past 2^53 they silently change value, so
  // the loader rejects them instead of corrupting the config.
  EXPECT_THROW((void)config_from_json(R"({"num_users":1e300})"),
               std::invalid_argument);
  EXPECT_THROW((void)config_from_json(R"({"seed":18446744073709551615})"),
               std::invalid_argument);
  EXPECT_THROW((void)config_from_json(R"({"horizon_slots":-1e300})"),
               std::invalid_argument);
  // The 2^53 boundary itself is exact and accepted.
  EXPECT_EQ(config_from_json(R"({"seed":9007199254740992})").seed,
            9007199254740992ULL);
}

TEST(ConfigIo, NonPositiveOfflineWindowIsRejectedByTheScheduler) {
  // A zero window would be a modulo-by-zero in the offline replan; the
  // strategy throws a named error instead.
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOffline;
  cfg.num_users = 2;
  cfg.horizon_slots = 100;
  cfg.offline_window_slots = 0;
  EXPECT_THROW((void)run_experiment(cfg), std::invalid_argument);
  cfg.offline_window_slots = 500;
  cfg.record_interval = 0;  // t % record_interval has the same hazard
  EXPECT_THROW((void)run_experiment(cfg), std::invalid_argument);
}

TEST(ConfigIo, LoadsFromResultDocument) {
  // result_to_json embeds the full config; feeding the whole result
  // document back reproduces the originating config.
  const ExperimentConfig cfg = [] {
    ExperimentConfig c;
    c.scheduler = SchedulerKind::kSyncSgd;
    c.num_users = 4;
    c.horizon_slots = 500;
    c.seed = 5;
    return c;
  }();
  const ExperimentResult result = run_experiment(cfg);
  const ExperimentConfig reloaded =
      config_from_json(result_to_json(cfg, result));
  EXPECT_TRUE(reloaded == cfg);
}

TEST(ConfigIo, SchedulerTokensAcceptBothVocabularies) {
  EXPECT_EQ(parse_scheduler_token("online"), SchedulerKind::kOnline);
  EXPECT_EQ(parse_scheduler_token("Online"), SchedulerKind::kOnline);
  EXPECT_EQ(parse_scheduler_token("sync"), SchedulerKind::kSyncSgd);
  EXPECT_EQ(parse_scheduler_token("Sync-SGD"), SchedulerKind::kSyncSgd);
  EXPECT_EQ(parse_scheduler_token("offline"), SchedulerKind::kOffline);
  EXPECT_EQ(parse_scheduler_token("Immediate"), SchedulerKind::kImmediate);
  EXPECT_THROW((void)parse_scheduler_token("onlin"), std::invalid_argument);
}

TEST(ConfigIo, DeviceAndModelTokens) {
  EXPECT_EQ(parse_device_token("mixed"), std::nullopt);
  EXPECT_EQ(parse_device_token(""), std::nullopt);
  EXPECT_EQ(parse_device_token("pixel2"), device::DeviceKind::kPixel2);
  EXPECT_THROW((void)parse_device_token("iphone"), std::invalid_argument);
  EXPECT_EQ(device_token(std::nullopt), std::string{"mixed"});
  EXPECT_EQ(device_token(device::DeviceKind::kNexus6P),
            std::string{"nexus6p"});
  EXPECT_EQ(parse_model_token("lenet5"), ModelKind::kLenet5);
  EXPECT_EQ(parse_model_token(model_token(ModelKind::kLenetSmall)),
            ModelKind::kLenetSmall);
  EXPECT_THROW((void)parse_model_token("resnet"), std::invalid_argument);
  EXPECT_EQ(parse_aggregation_token("fedasync"),
            fl::AggregationKind::kFedAsync);
  EXPECT_THROW((void)parse_aggregation_token("avg"), std::invalid_argument);
}

}  // namespace
}  // namespace fedco::core
