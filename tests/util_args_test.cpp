#include <gtest/gtest.h>

#include "util/args.hpp"

namespace fedco::util {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser{static_cast<int>(argv.size()), argv.data()};
}

TEST(ArgParser, KeyValueForms) {
  const auto args = parse({"--alpha", "3.5", "--name=fedco", "--flag"});
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_EQ(args.get("name"), "fedco");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag"), "");
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(ArgParser, NumericParsingAndErrors) {
  const auto args = parse({"--n", "42", "--bad", "4x2", "--f", "1e-3"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("f", 0.0), 1e-3);
  EXPECT_THROW((void)args.get_int("bad", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("bad", 0.0), std::invalid_argument);
}

TEST(ArgParser, Booleans) {
  const auto args = parse({"--on", "--yes", "true", "--no=false", "--odd", "maybe"});
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_TRUE(args.get_bool("yes", false));
  EXPECT_FALSE(args.get_bool("no", true));
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_TRUE(args.get_bool("absent2", true));
  EXPECT_THROW((void)args.get_bool("odd", false), std::invalid_argument);
}

TEST(ArgParser, PositionalAndValueLookahead) {
  const auto args = parse({"input.csv", "--k", "3", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
  EXPECT_EQ(args.get_int("k", 0), 3);
}

TEST(ArgParser, NegativeNumberAsValue) {
  // "-5" does not start with "--", so it is consumed as the value.
  const auto args = parse({"--offset", "-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

TEST(ArgParser, MalformedOptionsThrow) {
  EXPECT_THROW(parse({"---x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(ArgParser, UnusedReportsUntouchedOptions) {
  const auto args = parse({"--used", "1", "--typo", "2"});
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParser, FlagFollowedByOptionHasEmptyValue) {
  const auto args = parse({"--verbose", "--level", "3"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose"), "");
  EXPECT_EQ(args.get_int("level", 0), 3);
}

}  // namespace
}  // namespace fedco::util
