// Integration tests of the full simulation driver: determinism, energy
// accounting consistency, scheduler orderings the paper reports, and edge
// cases (p = 0 / p = 1 arrivals, single user, tiny horizons).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

namespace fedco::core {
namespace {

ExperimentConfig fast_config(SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.scheduler = kind;
  cfg.num_users = 10;
  cfg.horizon_slots = 2500;
  cfg.arrival_probability = 0.002;
  cfg.seed = 42;
  return cfg;
}

TEST(Experiment, DeterministicInSeed) {
  const auto a = run_experiment(fast_config(SchedulerKind::kOnline));
  const auto b = run_experiment(fast_config(SchedulerKind::kOnline));
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_DOUBLE_EQ(a.avg_queue_q, b.avg_queue_q);
  EXPECT_DOUBLE_EQ(a.avg_queue_h, b.avg_queue_h);
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto cfg = fast_config(SchedulerKind::kOnline);
  const auto a = run_experiment(cfg);
  cfg.seed = 43;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.total_energy_j, b.total_energy_j);
}

TEST(Experiment, EnergyBreakdownSumsToTotal) {
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    const auto r = run_experiment(fast_config(kind));
    const double parts = r.training_j + r.corun_j + r.app_j + r.idle_j +
                         r.network_j + r.overhead_j;
    EXPECT_NEAR(r.total_energy_j, parts, 1e-6) << scheduler_name(kind);
    EXPECT_GT(r.total_energy_j, 0.0);
  }
}

TEST(Experiment, PaperOrderingImmediateCostsMostOfflineLeast) {
  // Fig. 4(a): Immediate is the energy upper bound; offline (relaxed Lb) is
  // the lower bound; online sits in between.
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.horizon_slots = 5000;
  const double immediate = run_experiment(cfg).total_energy_j;
  cfg.scheduler = SchedulerKind::kOnline;
  const double online = run_experiment(cfg).total_energy_j;
  cfg.scheduler = SchedulerKind::kOffline;
  const double offline = run_experiment(cfg).total_energy_j;
  EXPECT_LT(online, immediate);
  EXPECT_LT(offline, immediate);
  EXPECT_LE(offline, online * 1.05);  // offline is (near-)minimal
}

TEST(Experiment, ImmediateMakesMostUpdates) {
  const auto immediate = run_experiment(fast_config(SchedulerKind::kImmediate));
  const auto online = run_experiment(fast_config(SchedulerKind::kOnline));
  const auto offline = run_experiment(fast_config(SchedulerKind::kOffline));
  const auto sync = run_experiment(fast_config(SchedulerKind::kSyncSgd));
  EXPECT_GT(immediate.total_updates, online.total_updates);
  EXPECT_GT(immediate.total_updates, offline.total_updates);
  // Sync's one aggregate per round is the fewest updates of all.
  EXPECT_LT(sync.total_updates, online.total_updates);
  EXPECT_GT(sync.total_updates, 0u);
}

TEST(Experiment, ImmediateLagApproachesNMinusOne) {
  // With everyone training continuously, every update sees nearly all other
  // users complete during its own training interval (Def. 1).
  const auto r = run_experiment(fast_config(SchedulerKind::kImmediate));
  EXPECT_GT(r.avg_lag, 0.6 * static_cast<double>(10 - 1));
  EXPECT_LE(r.avg_lag, 10.0);
}

TEST(Experiment, LargerVSavesMoreEnergyAndGrowsQueues) {
  // The [O(1/V), O(V)] trade-off of Theorem 1, end to end. V = 0 serves the
  // queue greedily (immediate-like, maximal energy); a large V trades queue
  // backlog for energy. Past the knee the energy curve is nearly flat
  // (Fig. 4a), so the robust comparison is V = 0 against a large V.
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.horizon_slots = 4000;
  cfg.V = 0.0;
  const auto small_v = run_experiment(cfg);
  cfg.V = 50000.0;
  const auto large_v = run_experiment(cfg);
  EXPECT_LT(large_v.total_energy_j, 0.8 * small_v.total_energy_j);
  EXPECT_GE(large_v.avg_queue_q + large_v.avg_queue_h,
            small_v.avg_queue_q + small_v.avg_queue_h);
}

TEST(Experiment, TighterLbRaisesEnergy) {
  // Fig. 4(a): smaller Lb -> less staleness tolerance -> more immediate
  // scheduling -> more energy.
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.horizon_slots = 6000;
  cfg.V = 20000.0;
  cfg.lb = 20.0;
  const double tight = run_experiment(cfg).total_energy_j;
  cfg.lb = 2000.0;
  const double relaxed = run_experiment(cfg).total_energy_j;
  EXPECT_LT(relaxed, tight);
}

TEST(Experiment, NoArrivalsMeansNoCorunning) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.arrival_probability = 0.0;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.corun_sessions, 0u);
  EXPECT_EQ(r.app_j, 0.0);
  EXPECT_EQ(r.corun_j, 0.0);
  EXPECT_GT(r.total_updates, 0u);
}

TEST(Experiment, SaturatedArrivalsCorunAlmostAlways) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.arrival_probability = 1.0;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.corun_sessions, 10 * r.separate_sessions);
}

TEST(Experiment, SingleUserWorks) {
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.num_users = 1;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.total_energy_j, 0.0);
  // A lone user never sees foreign updates: lag stays 0.
  EXPECT_EQ(r.avg_lag, 0.0);
}

TEST(Experiment, FixedDeviceFleet) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.fixed_device = device::DeviceKind::kHikey970;
  cfg.arrival_probability = 0.0;
  const auto r = run_experiment(cfg);
  // All-HiKey fleet training continuously: energy ~ n * P_b * horizon.
  const double expected =
      10.0 * 7.87 * static_cast<double>(cfg.horizon_slots);
  EXPECT_GT(r.total_energy_j, 0.5 * expected);
  EXPECT_LT(r.total_energy_j, 1.1 * expected);
}

TEST(Experiment, InvalidConfigsThrow) {
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.num_users = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg = fast_config(SchedulerKind::kOnline);
  cfg.horizon_slots = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, TracesAreRecorded) {
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.record_per_user_gaps = true;
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.traces.contains("Q"));
  EXPECT_TRUE(r.traces.contains("H"));
  EXPECT_TRUE(r.traces.contains("G"));
  EXPECT_TRUE(r.traces.contains("gap_user0"));
  EXPECT_TRUE(r.traces.contains("server_gap"));
  EXPECT_GT(r.traces.find("Q")->size(), 100u);
}

TEST(Experiment, LagAndGapArePositivelyCorrelated) {
  // Fig. 5(a) lower subplot: lag and gradient gap move together. The online
  // scheduler produces a wide lag spread (immediate pins every lag near
  // n-1, washing the correlation out in noise).
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.num_users = 15;
  cfg.horizon_slots = 8000;
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.lag_gap_samples.size(), 30u);
  std::vector<double> lags;
  std::vector<double> gaps;
  for (const auto& s : r.lag_gap_samples) {
    lags.push_back(static_cast<double>(s.lag));
    gaps.push_back(s.gap);
  }
  EXPECT_GT(util::pearson(lags, gaps), 0.5);
}

TEST(Experiment, DecisionOverheadIsAccountedWhenEnabled) {
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.decision_eval_seconds = 0.01;
  const auto with = run_experiment(cfg);
  cfg.decision_eval_seconds = 0.0;
  const auto without = run_experiment(cfg);
  EXPECT_GT(with.overhead_j, 0.0);
  EXPECT_EQ(without.overhead_j, 0.0);
}

TEST(Experiment, CoarserDecisionIntervalStillServes) {
  // Sec. VII "Energy Overhead": enlarging the decision interval reduces
  // overhead but must not deadlock the queue — updates still happen, and
  // with a 60 s granularity fewer co-run windows are caught.
  auto cfg = fast_config(SchedulerKind::kOnline);
  cfg.horizon_slots = 5000;
  cfg.V = 0.0;  // serve greedily so the interval is the only brake
  const auto every_slot = run_experiment(cfg);
  cfg.decision_interval_slots = 60;
  const auto coarse = run_experiment(cfg);
  EXPECT_GT(coarse.total_updates, 0u);
  EXPECT_LE(coarse.total_updates, every_slot.total_updates);
}

TEST(Experiment, DroppedUploadsReduceUpdatesNotEnergy) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.arrival_probability = 0.0;
  const auto reliable = run_experiment(cfg);
  cfg.upload_drop_probability = 0.5;
  const auto lossy = run_experiment(cfg);
  EXPECT_GT(lossy.dropped_updates, 0u);
  EXPECT_LT(lossy.total_updates, reliable.total_updates);
  // Energy is spent on the lost sessions all the same (same schedule).
  EXPECT_NEAR(lossy.total_energy_j, reliable.total_energy_j,
              0.1 * reliable.total_energy_j);
  // Conservation: sessions = applied + dropped (within the in-flight tail).
  EXPECT_GE(lossy.corun_sessions + lossy.separate_sessions,
            lossy.total_updates + lossy.dropped_updates);
}

TEST(Experiment, AllUploadsDroppedMeansNoUpdates) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.upload_drop_probability = 1.0;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.total_updates, 0u);
  EXPECT_GT(r.dropped_updates, 0u);
}

TEST(Experiment, SyncModeIgnoresUploadDrops) {
  auto cfg = fast_config(SchedulerKind::kSyncSgd);
  cfg.upload_drop_probability = 1.0;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.total_updates, 0u);  // barrier still completes every round
  EXPECT_EQ(r.dropped_updates, 0u);
}

TEST(Experiment, ArrivalTraceReplayDrivesCorunning) {
  // Replaying a usage log: with immediate scheduling and a trace that puts
  // an app on screen at t = 0, the first session of every user co-runs.
  const std::string path = "/tmp/fedco_experiment_trace.csv";
  {
    std::ofstream out{path};
    out << "0,Map\n1000,Tiktok\n";
  }
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.arrival_trace_path = path;
  const auto r = run_experiment(cfg);
  EXPECT_GE(r.corun_sessions, 10u);  // all 10 users co-run at t = 0
  // Missing file reported.
  cfg.arrival_trace_path = "/no/such/trace.csv";
  EXPECT_THROW(run_experiment(cfg), std::runtime_error);
}

TEST(Experiment, BatteryTrackingAccumulatesCycles) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.track_battery = true;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.battery_cycles_total, 0.0);
  // Continuous training on a ~37 kJ battery for 2500 s drains deep enough
  // to trigger opportunistic recharges on the hungrier devices.
  EXPECT_GE(r.battery_recharges, 0u);
  // Disabled by default.
  cfg.track_battery = false;
  const auto off = run_experiment(cfg);
  EXPECT_EQ(off.battery_cycles_total, 0.0);
}

TEST(Experiment, BatteryGateBlocksTrainingBelowThreshold) {
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.track_battery = true;
  cfg.battery.capacity_mah = 100.0;  // tiny battery: drains within the run
  cfg.battery.recharge_at_soc = 0.10;
  cfg.min_soc_to_train = 0.60;       // wide gated band [0.10, 0.60)
  const auto gated = run_experiment(cfg);
  EXPECT_GT(gated.battery_gated_slots, 0u);
  cfg.min_soc_to_train = 0.0;
  const auto open = run_experiment(cfg);
  EXPECT_LE(open.battery_gated_slots, 0u);
  EXPECT_LE(gated.total_updates, open.total_updates);
}

TEST(Experiment, ThermalThrottlingElongatesImmediateTraining) {
  // Immediate scheduling trains back-to-back: devices heat up and sessions
  // elongate (the paper's straggler mechanism). The throttled run completes
  // fewer updates in the same horizon.
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.horizon_slots = 6000;
  cfg.arrival_probability = 0.0;
  cfg.fixed_device = device::DeviceKind::kHikey970;  // hottest profile
  const auto cool = run_experiment(cfg);
  cfg.enable_thermal = true;
  const auto hot = run_experiment(cfg);
  EXPECT_GT(hot.max_temperature_c, 45.0);
  EXPECT_GT(hot.worst_throttle_factor, 1.1);
  EXPECT_GT(hot.throttled_sessions, 0u);
  EXPECT_LT(hot.total_updates, cool.total_updates);
}

TEST(Experiment, OnlineSchedulerThrottlesFewerSessionsThanImmediate) {
  // Both schemes eventually hit the same steady-state die temperature on a
  // board-class device, but immediate's back-to-back training makes nearly
  // every session start hot, while online's idle gaps let the die cool.
  auto cfg = fast_config(SchedulerKind::kImmediate);
  cfg.enable_thermal = true;
  cfg.fixed_device = device::DeviceKind::kHikey970;
  const auto immediate = run_experiment(cfg);
  cfg.scheduler = SchedulerKind::kOnline;
  const auto online = run_experiment(cfg);
  EXPECT_LT(online.throttled_sessions, immediate.throttled_sessions);
}

TEST(Experiment, FedAsyncAggregationRuns) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kImmediate;
  cfg.num_users = 4;
  cfg.horizon_slots = 2000;
  cfg.arrival_probability = 0.0;
  cfg.seed = 13;
  cfg.real_training = true;
  cfg.model = ModelKind::kMlp;
  cfg.dataset.classes = 3;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.train_per_class = 20;
  cfg.dataset.test_per_class = 8;
  cfg.eval_interval_s = 500.0;
  cfg.aggregation.kind = fl::AggregationKind::kFedAsync;
  const auto fedasync = run_experiment(cfg);
  EXPECT_GT(fedasync.total_updates, 5u);
  EXPECT_GT(fedasync.final_accuracy, 0.34);
  cfg.aggregation.kind = fl::AggregationKind::kDelayComp;
  const auto delaycomp = run_experiment(cfg);
  EXPECT_GT(delaycomp.final_accuracy, 0.34);
}

// --------------------------------------------------------- real training

namespace {
ExperimentConfig tiny_real(SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.scheduler = kind;
  cfg.num_users = 5;
  cfg.horizon_slots = 2500;
  cfg.arrival_probability = 0.001;
  cfg.seed = 21;
  cfg.real_training = true;
  cfg.model = ModelKind::kMlp;
  cfg.dataset.classes = 4;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.train_per_class = 30;
  cfg.dataset.test_per_class = 10;
  cfg.eval_interval_s = 800.0;
  return cfg;
}
}  // namespace

TEST(ExperimentRealTraining, DirichletPartitionTrains) {
  auto cfg = tiny_real(SchedulerKind::kImmediate);
  cfg.dirichlet_alpha = 0.3;  // heavy label skew
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.total_updates, 5u);
  EXPECT_GT(r.final_accuracy, 0.25);  // chance = 0.25 on 4 classes
}

TEST(ExperimentRealTraining, GapAwareLearningRateRuns) {
  auto cfg = tiny_real(SchedulerKind::kImmediate);
  cfg.gap_aware_lr = true;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.total_updates, 5u);
  EXPECT_GT(r.final_accuracy, 0.25);
}

TEST(ExperimentRealTraining, WeightPredictionRuns) {
  auto cfg = tiny_real(SchedulerKind::kImmediate);
  cfg.weight_prediction = true;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.total_updates, 5u);
  EXPECT_GT(r.final_accuracy, 0.25);
}

TEST(ExperimentRealTraining, MitigationsChangeTheTrajectory) {
  // The mitigations are not no-ops: the resulting accuracy trace differs
  // from the vanilla run with the same seed.
  auto cfg = tiny_real(SchedulerKind::kImmediate);
  const auto vanilla = run_experiment(cfg);
  cfg.weight_prediction = true;
  const auto predicted = run_experiment(cfg);
  EXPECT_NE(vanilla.avg_gap, predicted.avg_gap);
}

TEST(ExperimentRealTraining, AccuracyImprovesOverChance) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kImmediate;
  cfg.num_users = 4;
  cfg.horizon_slots = 3000;
  cfg.arrival_probability = 0.002;
  cfg.seed = 9;
  cfg.real_training = true;
  cfg.model = ModelKind::kMlp;
  cfg.dataset.classes = 4;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.train_per_class = 30;
  cfg.dataset.test_per_class = 10;
  cfg.dataset.seed = 31;
  cfg.eval_interval_s = 500.0;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.total_updates, 10u);
  EXPECT_GT(r.final_accuracy, 0.30);  // chance = 0.25
  EXPECT_TRUE(r.traces.contains("accuracy"));
  const double t_chance = r.time_to_accuracy(0.26);
  EXPECT_GE(t_chance, 0.0);
  EXPECT_LT(r.time_to_accuracy(2.0), 0.0);  // accuracy can't exceed 1
}

TEST(ExperimentRealTraining, SyncAggregatesAllClients) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kSyncSgd;
  cfg.num_users = 3;
  cfg.horizon_slots = 1500;
  cfg.arrival_probability = 0.0;
  cfg.seed = 11;
  cfg.real_training = true;
  cfg.model = ModelKind::kMlp;
  cfg.dataset.classes = 3;
  cfg.dataset.height = 8;
  cfg.dataset.width = 8;
  cfg.dataset.train_per_class = 20;
  cfg.dataset.test_per_class = 8;
  cfg.eval_interval_s = 500.0;
  const auto r = run_experiment(cfg);
  // ~1500 s / (train ~210 s + transfer) -> a handful of rounds; all updates
  // carry lag 0 by the barrier.
  EXPECT_GE(r.total_updates, 3u);
  EXPECT_EQ(r.avg_lag, 0.0);
}

}  // namespace
}  // namespace fedco::core
