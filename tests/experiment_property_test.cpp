// Parameterized invariant suite: the full simulation driver must uphold a
// set of conservation and sanity properties for every scheduler across
// random seeds and arrival regimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>

#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "core/offline_planner.hpp"
#include "core/result_io.hpp"
#include "device/power_model.hpp"
#include "golden_fingerprint.hpp"
#include "scenario/spec.hpp"

namespace fedco::core {
namespace {

struct PropertyCase {
  SchedulerKind scheduler;
  std::uint64_t seed;
  double arrival_p;
};

class ExperimentInvariants : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExperimentInvariants, HoldAcrossSchedulersAndSeeds) {
  const PropertyCase param = GetParam();
  ExperimentConfig cfg;
  cfg.scheduler = param.scheduler;
  cfg.num_users = 12;
  cfg.horizon_slots = 3000;
  cfg.arrival_probability = param.arrival_p;
  cfg.seed = param.seed;
  cfg.record_per_user_gaps = true;
  const ExperimentResult r = run_experiment(cfg);

  // Energy conservation: breakdown sums to the total, all non-negative.
  const double parts = r.training_j + r.corun_j + r.app_j + r.idle_j +
                       r.network_j + r.overhead_j;
  EXPECT_NEAR(r.total_energy_j, parts, 1e-6);
  for (const double component :
       {r.training_j, r.corun_j, r.app_j, r.idle_j, r.network_j, r.overhead_j}) {
    EXPECT_GE(component, 0.0);
  }

  // Lower bound: every device idles at least at P_d for the horizon
  // (cheapest profile is Nexus 6 at 0.238 W).
  EXPECT_GE(r.total_energy_j,
            0.238 * 12.0 * static_cast<double>(cfg.horizon_slots) * 0.99);

  // Session/update accounting: applied + dropped never exceeds sessions,
  // and all sessions have a type.
  EXPECT_GE(r.corun_sessions + r.separate_sessions,
            r.total_updates + r.dropped_updates);
  EXPECT_GT(r.total_updates + r.dropped_updates, 0u);

  // Queue sanity: Q is the count of waiting users, bounded by n; H >= 0.
  EXPECT_GE(r.avg_queue_q, 0.0);
  EXPECT_LE(r.avg_queue_q, 12.0 + 1e-9);
  EXPECT_GE(r.avg_queue_h, 0.0);

  // Staleness sanity. Note Def. 1 lag counts *updates*, not users: a slow
  // co-run session (e.g. Nexus6/CandyCrush at 997 s) can watch a fast
  // device complete several rounds, so lag can exceed n-1; it is bounded
  // by the total updates ever applied.
  EXPECT_GE(r.avg_lag, 0.0);
  EXPECT_LE(r.avg_lag, static_cast<double>(r.total_updates));
  for (const auto& sample : r.lag_gap_samples) {
    EXPECT_GE(sample.gap, 0.0);
    EXPECT_LE(sample.lag, r.total_updates);
  }

  // Gap traces are recorded and non-negative.
  for (std::size_t u = 0; u < 12; ++u) {
    const auto* gaps = r.traces.find("gap_user" + std::to_string(u));
    ASSERT_NE(gaps, nullptr);
    for (const double g : gaps->values()) EXPECT_GE(g, 0.0);
  }

  // JSON export round-trips through the writer without structural errors
  // and contains the scheduler tag.
  const std::string json = result_to_json(cfg, r);
  EXPECT_NE(json.find(scheduler_name(cfg.scheduler)), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = scheduler_name(info.param.scheduler);
  // gtest parameter names must be alphanumeric ("Sync-SGD" is not).
  std::erase_if(name, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
  name += "_seed" + std::to_string(info.param.seed);
  name += info.param.arrival_p >= 0.01 ? "_busy" : "_quiet";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExperimentInvariants,
    ::testing::Values(
        PropertyCase{SchedulerKind::kImmediate, 1, 0.001},
        PropertyCase{SchedulerKind::kImmediate, 2, 0.05},
        PropertyCase{SchedulerKind::kSyncSgd, 1, 0.001},
        PropertyCase{SchedulerKind::kSyncSgd, 2, 0.05},
        PropertyCase{SchedulerKind::kOffline, 1, 0.001},
        PropertyCase{SchedulerKind::kOffline, 2, 0.05},
        PropertyCase{SchedulerKind::kOnline, 1, 0.001},
        PropertyCase{SchedulerKind::kOnline, 2, 0.05},
        PropertyCase{SchedulerKind::kOnline, 3, 0.0}),
    case_name);

// Memory-budget property for the 1M-user fleet path (docs/performance.md
// §"The 1M-user fleet"): arena fleet builds must allocate O(1) columns per
// override concern, never O(users) separate blocks. column_count() reports
// exactly how many columns are live, so growing the fleet 10x must leave it
// unchanged — per-user vector growth anywhere in the arena would show up as
// a size-dependent count. The companion RSS gate lives in tools/bench_check
// (--max-rss-growth-pct over bench_scale's process_peak_rss_mib).
TEST(FleetMemoryBudget, ArenaAllocationCountIsConstantInFleetSize) {
  scenario::ScenarioSpec spec;
  spec.horizon_slots = 600;
  spec.device_mix = {{device::DeviceKind::kPixel2, 0.25},
                     {device::DeviceKind::kNexus6P, 0.25},
                     {device::DeviceKind::kNexus6, 0.25},
                     {device::DeviceKind::kHikey970, 0.25}};
  spec.arrival.distribution = scenario::ArrivalSpec::Distribution::kLogNormal;
  spec.arrival.mean_probability = 0.002;
  spec.arrival.sigma = 0.5;
  spec.diurnal.enabled = true;
  spec.diurnal.swing = 0.8;
  spec.diurnal.timezone_spread_hours = 10.0;
  spec.network.lte_fraction = 0.3;
  spec.churn.churn_fraction = 0.2;
  spec.priority.vip_fraction = 0.1;
  spec.stream_rng = true;

  spec.num_users = 10000;
  const scenario::FleetArena small = scenario::generate_fleet_arena(spec, 1);
  spec.num_users = 100000;
  const scenario::FleetArena large = scenario::generate_fleet_arena(spec, 1);

  // Every concern of this spec is active, yet the arena holds a constant
  // number of flat columns — the same number at 10k and at 100k users.
  EXPECT_EQ(small.column_count(), large.column_count());
  EXPECT_LE(large.column_count(), 18u);
  EXPECT_EQ(large.size(), 100000u);

  // A concern the spec never overrides must cost zero columns: the default
  // spec (homogeneous fleet, no churn/diurnal/LTE/mix) allocates nothing.
  scenario::ScenarioSpec plain;
  plain.num_users = 100000;
  plain.horizon_slots = 600;
  EXPECT_EQ(scenario::generate_fleet_arena(plain, 1).column_count(), 0u);
}

// Stream mode upholds the same driver invariants as the legacy script path
// (the parity battery proves lazy == pregenerated; this proves the mode is
// physically sensible, not just self-consistent).
TEST(StreamModeInvariants, ConservationHoldsUnderArrivalStreams) {
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.num_users = 12;
    cfg.horizon_slots = 3000;
    cfg.arrival_probability = 0.005;
    cfg.seed = 17;
    cfg.arrival_streams = true;
    const ExperimentResult r = run_experiment(cfg);
    const double parts = r.training_j + r.corun_j + r.app_j + r.idle_j +
                         r.network_j + r.overhead_j;
    EXPECT_NEAR(r.total_energy_j, parts, 1e-6) << scheduler_name(kind);
    EXPECT_GT(r.total_updates + r.dropped_updates, 0u) << scheduler_name(kind);
    EXPECT_GE(r.corun_sessions + r.separate_sessions,
              r.total_updates + r.dropped_updates)
        << scheduler_name(kind);
  }
}

// ------------------------------------------------------------------------
// Folded-accrual invariants (PR 7, config.folded_gap_accrual): the
// closed-form G(t) engine must uphold the physical invariants of the
// default sweep, reproduce its G(t)/H(t) trajectories up to floating-point
// associativity, and leave the decision stream untouched on every regime
// the gap dynamics exercise (availability churn, diurnal arrivals, LTE).
// The divergence tolerance below is the quantified contract of
// docs/performance.md section 8: the two engines compute the same sum in a
// different association order, so their G(t) may differ by a few ulps of
// the summands — never by a decision-visible amount on these fleets.

struct FoldedCase {
  SchedulerKind scheduler;
  const char* regime;  // "churn" | "diurnal" | "lte"
};

/// Pinned |G_folded(t) - G_sweep(t)| (and H) bound. G on these fleets
/// stays under ~2e3, so this allows ~1e12 ulps of slack over the measured
/// drift (~1e-10 at worst) while still catching any real re-association
/// bug, which shows up slots-times-epsilon sized (>= 5e-2).
constexpr double kFoldedGTolerance = 1e-6;

ExperimentConfig folded_case_config(const FoldedCase& param) {
  ExperimentConfig cfg;
  cfg.scheduler = param.scheduler;
  cfg.num_users = 30;
  cfg.horizon_slots = 2000;
  cfg.arrival_probability = 0.01;
  cfg.seed = 23;
  cfg.record_interval = 1;  // per-slot G/H traces for the recurrence check
  cfg.lb = 50.0;            // keep H(t) off the floor so Eq. 16 is exercised
  if (std::string{param.regime} == "churn") {
    scenario::ScenarioSpec spec;
    spec.num_users = cfg.num_users;
    spec.horizon_slots = cfg.horizon_slots;
    spec.arrival.mean_probability = cfg.arrival_probability;
    spec.churn.churn_fraction = 0.5;
    spec.churn.min_presence = 0.3;
    spec.churn.max_presence = 0.8;
    cfg = apply_scenario(spec, cfg);
  } else if (std::string{param.regime} == "diurnal") {
    cfg.diurnal = true;
    cfg.diurnal_swing = 0.8;
  } else {
    cfg.use_lte = true;
  }
  return cfg;
}

class FoldedGapInvariants : public ::testing::TestWithParam<FoldedCase> {};

TEST_P(FoldedGapInvariants, MatchesSweepUpToAssociativity) {
  const FoldedCase param = GetParam();
  ExperimentConfig cfg = folded_case_config(param);
  const ExperimentResult sweep = run_experiment(cfg);
  cfg.folded_gap_accrual = true;
  const ExperimentResult folded = run_experiment(cfg);

  // Physical invariants hold in folded mode on their own.
  const double parts = folded.training_j + folded.corun_j + folded.app_j +
                       folded.idle_j + folded.network_j + folded.overhead_j;
  EXPECT_NEAR(folded.total_energy_j, parts, 1e-6);
  EXPECT_GT(folded.total_updates + folded.dropped_updates, 0u);

  // The G(t) engines differ only by summation order, which on these
  // fleets never crosses an Eq. (21) decision threshold: the decision
  // stream — and with it every energy joule — is identical, bit for bit.
  EXPECT_EQ(folded.total_updates, sweep.total_updates);
  EXPECT_EQ(folded.dropped_updates, sweep.dropped_updates);
  EXPECT_EQ(folded.total_energy_j, sweep.total_energy_j);

  // Quantified associativity drift: per-slot G(t) and H(t) trajectories
  // agree within the pinned tolerance.
  const auto* g_sweep = sweep.traces.find("G");
  const auto* g_folded = folded.traces.find("G");
  const auto* h_sweep = sweep.traces.find("H");
  const auto* h_folded = folded.traces.find("H");
  ASSERT_NE(g_sweep, nullptr);
  ASSERT_NE(g_folded, nullptr);
  ASSERT_EQ(g_sweep->size(), g_folded->size());
  ASSERT_EQ(h_sweep->size(), h_folded->size());
  double max_g_drift = 0.0;
  double max_h_drift = 0.0;
  for (std::size_t k = 0; k < g_sweep->size(); ++k) {
    max_g_drift = std::max(
        max_g_drift, std::abs(g_sweep->value_at(k) - g_folded->value_at(k)));
    max_h_drift = std::max(
        max_h_drift, std::abs(h_sweep->value_at(k) - h_folded->value_at(k)));
  }
  EXPECT_LE(max_g_drift, kFoldedGTolerance) << "G(t) drift beyond contract";
  EXPECT_LE(max_h_drift, kFoldedGTolerance) << "H(t) drift beyond contract";

  if (param.scheduler == SchedulerKind::kOnline) {
    // Eq. (16) holds exactly on the recorded folded trajectory:
    // H(t) = max(H(t-1) + G(t) - Lb, 0), from H(-1) = 0.
    double h_prev = 0.0;
    for (std::size_t k = 0; k < h_folded->size(); ++k) {
      const double expect =
          std::max(h_prev + g_folded->value_at(k) - cfg.lb, 0.0);
      ASSERT_EQ(h_folded->value_at(k), expect) << "slot " << k;
      h_prev = h_folded->value_at(k);
    }

    // The batched Sec. V-A decide path and the scalar reference must stay
    // bit-identical under folded accrual too (the PR 5 contract).
    ExperimentConfig scalar_cfg = cfg;
    scalar_cfg.online_batch_decide = false;
    const ExperimentResult scalar = run_experiment(scalar_cfg);
    EXPECT_EQ(fedco::testing::fingerprint(folded),
              fedco::testing::fingerprint(scalar));
  }
}

std::string folded_case_name(const ::testing::TestParamInfo<FoldedCase>& info) {
  std::string name = scheduler_name(info.param.scheduler);
  std::erase_if(name, [](char c) {
    return !std::isalnum(static_cast<unsigned char>(c));
  });
  return name + "_" + info.param.regime;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, FoldedGapInvariants,
    ::testing::Values(
        FoldedCase{SchedulerKind::kImmediate, "churn"},
        FoldedCase{SchedulerKind::kImmediate, "diurnal"},
        FoldedCase{SchedulerKind::kImmediate, "lte"},
        FoldedCase{SchedulerKind::kSyncSgd, "churn"},
        FoldedCase{SchedulerKind::kSyncSgd, "diurnal"},
        FoldedCase{SchedulerKind::kSyncSgd, "lte"},
        FoldedCase{SchedulerKind::kOffline, "churn"},
        FoldedCase{SchedulerKind::kOffline, "diurnal"},
        FoldedCase{SchedulerKind::kOffline, "lte"},
        FoldedCase{SchedulerKind::kOnline, "churn"},
        FoldedCase{SchedulerKind::kOnline, "diurnal"},
        FoldedCase{SchedulerKind::kOnline, "lte"}),
    folded_case_name);

// The golden-fingerprint suites (core_scheduler_parity_test and friends)
// pin default-flag behaviour bit for bit; that contract only covers the
// sweep engine while folded accrual stays opt-in. Guard the default.
TEST(FoldedGapInvariants, FoldedAccrualIsOptIn) {
  EXPECT_FALSE(ExperimentConfig{}.folded_gap_accrual);
}

// ------------------------------------------------------------------------
// Fault-injection invariants (PR 9): outage and recovery windows split a
// user's presence into multiple windows, which stresses the driver's
// event calendar harder than anything the single-window fleets can —
// kJoin/kLeave pairs repeat per user, in-flight sessions must drain
// across absences, and lazy stream feeds re-seek at every re-entry. The
// goldens in scenario_fault_test pin the trajectories; this suite checks
// the physics stays sane on regimes chosen to collide events.

void expect_fault_conservation(const ExperimentConfig& cfg,
                               const char* what) {
  const ExperimentResult r = run_experiment(cfg);
  const double parts = r.training_j + r.corun_j + r.app_j + r.idle_j +
                       r.network_j + r.overhead_j;
  EXPECT_NEAR(r.total_energy_j, parts, 1e-6)
      << what << " / " << scheduler_name(cfg.scheduler);
  // Every applied or dropped update came from a started session, and the
  // run still made progress despite the faults.
  EXPECT_GE(r.corun_sessions + r.separate_sessions,
            r.total_updates + r.dropped_updates)
      << what << " / " << scheduler_name(cfg.scheduler);
  EXPECT_GT(r.total_updates + r.dropped_updates, 0u)
      << what << " / " << scheduler_name(cfg.scheduler);
  // Queue sanity under churn: Q counts waiting users, bounded by n.
  EXPECT_GE(r.avg_queue_q, 0.0);
  EXPECT_LE(r.avg_queue_q, static_cast<double>(cfg.num_users) + 1e-9);
  // Presence accounting: each recovery re-entry is a join; a user can
  // only leave a window it joined (final windows reaching the horizon
  // never emit a leave, so joins bound leaves from above).
  EXPECT_GE(r.summary.joins, r.summary.leaves)
      << what << " / " << scheduler_name(cfg.scheduler);
}

TEST(FaultInvariants, ConservationUnderMidTrainingOutages) {
  // Busy arrivals guarantee sessions are in flight when the outage lands;
  // the full-fleet window forces every in-flight transfer to drain across
  // an absence.
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    scenario::ScenarioSpec spec;
    spec.num_users = 16;
    spec.horizon_slots = 3000;
    spec.arrival.mean_probability = 0.02;
    scenario::OutageSpec blackout;
    blackout.region = "everyone";
    blackout.start_slot = 800;
    blackout.end_slot = 1200;
    blackout.fraction = 1.0;
    spec.faults.outages = {blackout};
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.seed = 7;
    expect_fault_conservation(apply_scenario(spec, cfg), "mid-training");
  }
}

TEST(FaultInvariants, SingleSlotRecoveryWindows) {
  // Back-to-back outages leaving one-slot presence gaps: users join and
  // leave on adjacent slots, the tightest legal window the calendar
  // accepts (join strictly after the previous leave).
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kOnline}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.num_users = 8;
    cfg.horizon_slots = 2000;
    cfg.arrival_probability = 0.05;
    cfg.seed = 11;
    // The chopped-up presence leaves ~1300 present slots; the default
    // Lb=500 deferral budget would let Online push every decision past
    // the horizon, which tests nothing. A small budget makes it act.
    cfg.lb = 20.0;
    cfg.per_user.resize(cfg.num_users);
    for (std::size_t i = 0; i < cfg.num_users; ++i) {
      const auto s = static_cast<sim::Slot>(i);
      auto& pu = cfg.per_user[i];
      pu.leave_slot = 500 + s;
      pu.extra_windows = {{501 + s, 502 + s},   // single-slot recovery
                          {900 + s, 901 + s},   // and another
                          {1200, scenario::kNeverLeaves}};
    }
    expect_fault_conservation(cfg, "single-slot-recovery");
  }
}

TEST(FaultInvariants, OutageCollidingWithPhaseEnds) {
  // Fixed arrivals + a dense outage grid make leave slots land on the
  // same slots as training phase-end events (sessions are hundreds of
  // slots long, windows are too): the calendar must order kPhaseEnd
  // before kLeave per user and keep the books balanced.
  for (const auto kind : {SchedulerKind::kSyncSgd, SchedulerKind::kOffline,
                          SchedulerKind::kOnline}) {
    scenario::ScenarioSpec spec;
    spec.num_users = 20;
    spec.horizon_slots = 4000;
    spec.arrival.mean_probability = 0.03;
    spec.faults.commute.fraction = 1.0;
    spec.faults.commute.period_slots = 350;
    spec.faults.commute.on_slots = 300;
    scenario::OutageSpec mid;
    mid.region = "half";
    mid.start_slot = 1000;
    mid.end_slot = 1600;
    mid.fraction = 0.5;
    spec.faults.outages = {mid};
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.seed = 29;
    expect_fault_conservation(apply_scenario(spec, cfg), "phase-collide");
  }
}

TEST(FaultInvariants, StreamLazyMatchesPregeneratedUnderFaults) {
  // The multi-window stream path has two implementations — lazy per-window
  // feed re-seek vs. per-window pregenerated arena slices. They must stay
  // bit-identical on fault fleets exactly as the parity battery pins for
  // single-window fleets.
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    scenario::ScenarioSpec spec;
    spec.num_users = 24;
    spec.horizon_slots = 2400;
    spec.arrival.distribution =
        scenario::ArrivalSpec::Distribution::kLogNormal;
    spec.arrival.mean_probability = 0.008;
    spec.arrival.sigma = 0.5;
    spec.stream_rng = true;
    spec.faults.commute.fraction = 0.5;
    spec.faults.commute.period_slots = 500;
    spec.faults.commute.on_slots = 320;
    scenario::OutageSpec mid;
    mid.region = "third";
    mid.start_slot = 700;
    mid.end_slot = 1100;
    mid.fraction = 0.34;
    spec.faults.outages = {mid};
    ExperimentConfig base;
    base.scheduler = kind;
    base.seed = 42;
    ExperimentConfig lazy = apply_scenario(spec, base);
    lazy.pregenerate_streams = false;
    ExperimentConfig pregen = lazy;
    pregen.pregenerate_streams = true;
    EXPECT_EQ(fedco::testing::fingerprint(run_experiment(lazy)),
              fedco::testing::fingerprint(run_experiment(pregen)))
        << scheduler_name(kind);
  }
}

// ------------------------------------------------------------------------
// Churn-/priority-aware invariants (PR 10): the departure-aware planner
// and the presence-discounted online rule change WHICH work is scheduled,
// never the books — conservation must hold with the flags on, departure
// feasibility must hold plan by plan, and the priority machinery must be
// the exact identity when no weight deviates from 1.0.

TEST(ChurnAwareInvariants, PlansNeverCoRunPastTheDeparture) {
  // Every (device, app) pair at four departure shapes: comfortably
  // feasible, ending exactly at the leave slot (feasible — in-flight
  // sessions run to completion), unfinishable, and never-leaving. With an
  // effectively unbounded budget the knapsack selects every co-run it is
  // offered, so any unfinishable co-run that survives the feasibility
  // pre-pass would surface as a kWaitForApp plan here.
  OfflinePlannerConfig cfg;
  cfg.lb = 1e12;
  cfg.window_slots = 3000;
  cfg.slot_seconds = 1.0;
  cfg.churn_aware = true;
  constexpr sim::Slot kArrival = 100;
  std::vector<OfflineUserInput> users;
  for (std::size_t k = 0; k < device::kDeviceKinds; ++k) {
    const device::DeviceProfile& dev =
        device::profile(static_cast<device::DeviceKind>(k));
    for (std::size_t a = 0; a < device::kAppKinds; ++a) {
      const auto app = static_cast<device::AppKind>(a);
      const auto duration = static_cast<sim::Slot>(std::ceil(
          device::training_duration_s(dev, device::AppStatus::kApp, app)));
      for (const sim::Slot leave :
           {kArrival + duration + 50, kArrival + duration,
            kArrival + duration / 2, scenario::kNeverLeaves}) {
        OfflineUserInput in;
        in.dev = &dev;
        in.next_arrival = kArrival;
        in.arrival_app = app;
        in.momentum_norm = 1.0;
        in.leave_slot = leave;
        users.push_back(in);
      }
    }
  }
  const OfflineWindowPlan aware = plan_window(0, users, cfg);
  std::size_t co_runs = 0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (aware.plans[i].action != OfflineAction::kWaitForApp) continue;
    ++co_runs;
    const double end_s =
        static_cast<double>(aware.plans[i].start_slot) * cfg.slot_seconds +
        device::training_duration_s(*users[i].dev, device::AppStatus::kApp,
                                    users[i].arrival_app);
    EXPECT_LE(end_s,
              static_cast<double>(users[i].leave_slot) * cfg.slot_seconds)
        << "user " << i;
  }
  // The feasible shapes (3 of 4 per pair) must actually co-run under the
  // unbounded budget — an empty plan would vacuously pass the loop above.
  EXPECT_EQ(co_runs, device::kDeviceKinds * device::kAppKinds * 3);

  // And the property bites: the oblivious planner waits for at least one
  // co-run the departure makes unfinishable.
  cfg.churn_aware = false;
  const OfflineWindowPlan oblivious = plan_window(0, users, cfg);
  std::size_t doomed = 0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (oblivious.plans[i].action != OfflineAction::kWaitForApp) continue;
    const double end_s =
        static_cast<double>(oblivious.plans[i].start_slot) * cfg.slot_seconds +
        device::training_duration_s(*users[i].dev, device::AppStatus::kApp,
                                    users[i].arrival_app);
    doomed += end_s > static_cast<double>(users[i].leave_slot) ? 1 : 0;
  }
  EXPECT_EQ(doomed, device::kDeviceKinds * device::kAppKinds);
}

TEST(ChurnAwareInvariants, ConservationHoldsWithBothFlagsOn) {
  // The churn-aware modes only reweight/veto decisions; the Eq. (15)/(16)
  // queue updates and the energy meters are untouched, so the fault-suite
  // conservation battery must hold verbatim with the flags on.
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    scenario::ScenarioSpec spec;
    spec.num_users = 24;
    spec.horizon_slots = 3000;
    spec.arrival.mean_probability = 0.01;
    spec.churn.churn_fraction = 0.6;
    spec.churn.min_presence = 0.2;
    spec.churn.max_presence = 0.7;
    spec.priority.vip_fraction = 0.25;
    spec.priority.vip_weight = 4.0;
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.seed = 13;
    cfg.offline_churn_aware = true;
    cfg.online_churn_aware = true;
    expect_fault_conservation(apply_scenario(spec, cfg), "churn-aware");
  }
}

TEST(ChurnAwareInvariants, VipFractionZeroAllocatesNothing) {
  // A priority block that assigns no VIPs is the exact identity: zero
  // arena columns, every user at weight 1.0 — so the fleet is
  // indistinguishable from one generated without the block (the golden
  // identity lives in scenario_priority_test; this pins the memory side).
  scenario::ScenarioSpec spec;
  spec.num_users = 500;
  spec.horizon_slots = 600;
  spec.priority.vip_fraction = 0.0;
  spec.priority.vip_weight = 16.0;
  const scenario::FleetArena fleet = scenario::generate_fleet_arena(spec, 3);
  EXPECT_EQ(fleet.column_count(), 0u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet.user(i).priority, 1.0);
  }
}

TEST(ChurnAwareInvariants, StreamLazyMatchesPregeneratedOnPriorityFleets) {
  // The lazy-vs-pregenerated stream parity must survive the new modes: the
  // priority column and churn-aware decisions read fleet state, never the
  // arrival machinery, so the A/B switch stays bit-identical.
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    scenario::ScenarioSpec spec;
    spec.num_users = 24;
    spec.horizon_slots = 2400;
    spec.arrival.distribution =
        scenario::ArrivalSpec::Distribution::kLogNormal;
    spec.arrival.mean_probability = 0.008;
    spec.arrival.sigma = 0.5;
    spec.churn.churn_fraction = 0.5;
    spec.churn.min_presence = 0.3;
    spec.churn.max_presence = 0.8;
    spec.priority.vip_fraction = 0.2;
    spec.priority.vip_weight = 4.0;
    spec.stream_rng = true;
    ExperimentConfig base;
    base.scheduler = kind;
    base.seed = 42;
    base.offline_churn_aware = true;
    base.online_churn_aware = true;
    ExperimentConfig lazy = apply_scenario(spec, base);
    lazy.pregenerate_streams = false;
    ExperimentConfig pregen = lazy;
    pregen.pregenerate_streams = true;
    EXPECT_EQ(fedco::testing::fingerprint(run_experiment(lazy)),
              fedco::testing::fingerprint(run_experiment(pregen)))
        << scheduler_name(kind);
  }
}

TEST(ChurnAwareInvariants, ChurnAwareFlagsAreOptIn) {
  EXPECT_FALSE(ExperimentConfig{}.offline_churn_aware);
  EXPECT_FALSE(ExperimentConfig{}.online_churn_aware);
}

TEST(ResultJson, FileExportAndOptions) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOnline;
  cfg.num_users = 4;
  cfg.horizon_slots = 500;
  cfg.seed = 5;
  const ExperimentResult r = run_experiment(cfg);

  const std::string path = "/tmp/fedco_result_test.json";
  write_result_json(path, cfg, r);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string contents{std::istreambuf_iterator<char>{in},
                       std::istreambuf_iterator<char>{}};
  EXPECT_NE(contents.find("\"energy_j\""), std::string::npos);
  EXPECT_NE(contents.find("\"traces\""), std::string::npos);

  ResultJsonOptions no_traces;
  no_traces.include_traces = false;
  const std::string lean = result_to_json(cfg, r, no_traces);
  EXPECT_EQ(lean.find("\"traces\""), std::string::npos);
  EXPECT_LT(lean.size(), contents.size());

  ResultJsonOptions with_samples;
  with_samples.include_lag_gap_samples = true;
  const std::string full = result_to_json(cfg, r, with_samples);
  EXPECT_NE(full.find("\"lag_gap\""), std::string::npos);

  EXPECT_THROW(write_result_json("/no_such_dir_xyz/out.json", cfg, r),
               std::runtime_error);
}

}  // namespace
}  // namespace fedco::core
