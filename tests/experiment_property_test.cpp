// Parameterized invariant suite: the full simulation driver must uphold a
// set of conservation and sanity properties for every scheduler across
// random seeds and arrival regimes.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>

#include "core/experiment.hpp"
#include "core/result_io.hpp"
#include "scenario/spec.hpp"

namespace fedco::core {
namespace {

struct PropertyCase {
  SchedulerKind scheduler;
  std::uint64_t seed;
  double arrival_p;
};

class ExperimentInvariants : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExperimentInvariants, HoldAcrossSchedulersAndSeeds) {
  const PropertyCase param = GetParam();
  ExperimentConfig cfg;
  cfg.scheduler = param.scheduler;
  cfg.num_users = 12;
  cfg.horizon_slots = 3000;
  cfg.arrival_probability = param.arrival_p;
  cfg.seed = param.seed;
  cfg.record_per_user_gaps = true;
  const ExperimentResult r = run_experiment(cfg);

  // Energy conservation: breakdown sums to the total, all non-negative.
  const double parts = r.training_j + r.corun_j + r.app_j + r.idle_j +
                       r.network_j + r.overhead_j;
  EXPECT_NEAR(r.total_energy_j, parts, 1e-6);
  for (const double component :
       {r.training_j, r.corun_j, r.app_j, r.idle_j, r.network_j, r.overhead_j}) {
    EXPECT_GE(component, 0.0);
  }

  // Lower bound: every device idles at least at P_d for the horizon
  // (cheapest profile is Nexus 6 at 0.238 W).
  EXPECT_GE(r.total_energy_j,
            0.238 * 12.0 * static_cast<double>(cfg.horizon_slots) * 0.99);

  // Session/update accounting: applied + dropped never exceeds sessions,
  // and all sessions have a type.
  EXPECT_GE(r.corun_sessions + r.separate_sessions,
            r.total_updates + r.dropped_updates);
  EXPECT_GT(r.total_updates + r.dropped_updates, 0u);

  // Queue sanity: Q is the count of waiting users, bounded by n; H >= 0.
  EXPECT_GE(r.avg_queue_q, 0.0);
  EXPECT_LE(r.avg_queue_q, 12.0 + 1e-9);
  EXPECT_GE(r.avg_queue_h, 0.0);

  // Staleness sanity. Note Def. 1 lag counts *updates*, not users: a slow
  // co-run session (e.g. Nexus6/CandyCrush at 997 s) can watch a fast
  // device complete several rounds, so lag can exceed n-1; it is bounded
  // by the total updates ever applied.
  EXPECT_GE(r.avg_lag, 0.0);
  EXPECT_LE(r.avg_lag, static_cast<double>(r.total_updates));
  for (const auto& sample : r.lag_gap_samples) {
    EXPECT_GE(sample.gap, 0.0);
    EXPECT_LE(sample.lag, r.total_updates);
  }

  // Gap traces are recorded and non-negative.
  for (std::size_t u = 0; u < 12; ++u) {
    const auto* gaps = r.traces.find("gap_user" + std::to_string(u));
    ASSERT_NE(gaps, nullptr);
    for (const double g : gaps->values()) EXPECT_GE(g, 0.0);
  }

  // JSON export round-trips through the writer without structural errors
  // and contains the scheduler tag.
  const std::string json = result_to_json(cfg, r);
  EXPECT_NE(json.find(scheduler_name(cfg.scheduler)), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = scheduler_name(info.param.scheduler);
  // gtest parameter names must be alphanumeric ("Sync-SGD" is not).
  std::erase_if(name, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
  name += "_seed" + std::to_string(info.param.seed);
  name += info.param.arrival_p >= 0.01 ? "_busy" : "_quiet";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExperimentInvariants,
    ::testing::Values(
        PropertyCase{SchedulerKind::kImmediate, 1, 0.001},
        PropertyCase{SchedulerKind::kImmediate, 2, 0.05},
        PropertyCase{SchedulerKind::kSyncSgd, 1, 0.001},
        PropertyCase{SchedulerKind::kSyncSgd, 2, 0.05},
        PropertyCase{SchedulerKind::kOffline, 1, 0.001},
        PropertyCase{SchedulerKind::kOffline, 2, 0.05},
        PropertyCase{SchedulerKind::kOnline, 1, 0.001},
        PropertyCase{SchedulerKind::kOnline, 2, 0.05},
        PropertyCase{SchedulerKind::kOnline, 3, 0.0}),
    case_name);

// Memory-budget property for the 1M-user fleet path (docs/performance.md
// §"The 1M-user fleet"): arena fleet builds must allocate O(1) columns per
// override concern, never O(users) separate blocks. column_count() reports
// exactly how many columns are live, so growing the fleet 10x must leave it
// unchanged — per-user vector growth anywhere in the arena would show up as
// a size-dependent count. The companion RSS gate lives in tools/bench_check
// (--max-rss-growth-pct over bench_scale's process_peak_rss_mib).
TEST(FleetMemoryBudget, ArenaAllocationCountIsConstantInFleetSize) {
  scenario::ScenarioSpec spec;
  spec.horizon_slots = 600;
  spec.device_mix = {{device::DeviceKind::kPixel2, 0.25},
                     {device::DeviceKind::kNexus6P, 0.25},
                     {device::DeviceKind::kNexus6, 0.25},
                     {device::DeviceKind::kHikey970, 0.25}};
  spec.arrival.distribution = scenario::ArrivalSpec::Distribution::kLogNormal;
  spec.arrival.mean_probability = 0.002;
  spec.arrival.sigma = 0.5;
  spec.diurnal.enabled = true;
  spec.diurnal.swing = 0.8;
  spec.diurnal.timezone_spread_hours = 10.0;
  spec.network.lte_fraction = 0.3;
  spec.churn.churn_fraction = 0.2;
  spec.stream_rng = true;

  spec.num_users = 10000;
  const scenario::FleetArena small = scenario::generate_fleet_arena(spec, 1);
  spec.num_users = 100000;
  const scenario::FleetArena large = scenario::generate_fleet_arena(spec, 1);

  // Every concern of this spec is active, yet the arena holds a constant
  // number of flat columns — the same number at 10k and at 100k users.
  EXPECT_EQ(small.column_count(), large.column_count());
  EXPECT_LE(large.column_count(), 13u);
  EXPECT_EQ(large.size(), 100000u);

  // A concern the spec never overrides must cost zero columns: the default
  // spec (homogeneous fleet, no churn/diurnal/LTE/mix) allocates nothing.
  scenario::ScenarioSpec plain;
  plain.num_users = 100000;
  plain.horizon_slots = 600;
  EXPECT_EQ(scenario::generate_fleet_arena(plain, 1).column_count(), 0u);
}

// Stream mode upholds the same driver invariants as the legacy script path
// (the parity battery proves lazy == pregenerated; this proves the mode is
// physically sensible, not just self-consistent).
TEST(StreamModeInvariants, ConservationHoldsUnderArrivalStreams) {
  for (const auto kind : {SchedulerKind::kImmediate, SchedulerKind::kSyncSgd,
                          SchedulerKind::kOffline, SchedulerKind::kOnline}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.num_users = 12;
    cfg.horizon_slots = 3000;
    cfg.arrival_probability = 0.005;
    cfg.seed = 17;
    cfg.arrival_streams = true;
    const ExperimentResult r = run_experiment(cfg);
    const double parts = r.training_j + r.corun_j + r.app_j + r.idle_j +
                         r.network_j + r.overhead_j;
    EXPECT_NEAR(r.total_energy_j, parts, 1e-6) << scheduler_name(kind);
    EXPECT_GT(r.total_updates + r.dropped_updates, 0u) << scheduler_name(kind);
    EXPECT_GE(r.corun_sessions + r.separate_sessions,
              r.total_updates + r.dropped_updates)
        << scheduler_name(kind);
  }
}

TEST(ResultJson, FileExportAndOptions) {
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kOnline;
  cfg.num_users = 4;
  cfg.horizon_slots = 500;
  cfg.seed = 5;
  const ExperimentResult r = run_experiment(cfg);

  const std::string path = "/tmp/fedco_result_test.json";
  write_result_json(path, cfg, r);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string contents{std::istreambuf_iterator<char>{in},
                       std::istreambuf_iterator<char>{}};
  EXPECT_NE(contents.find("\"energy_j\""), std::string::npos);
  EXPECT_NE(contents.find("\"traces\""), std::string::npos);

  ResultJsonOptions no_traces;
  no_traces.include_traces = false;
  const std::string lean = result_to_json(cfg, r, no_traces);
  EXPECT_EQ(lean.find("\"traces\""), std::string::npos);
  EXPECT_LT(lean.size(), contents.size());

  ResultJsonOptions with_samples;
  with_samples.include_lag_gap_samples = true;
  const std::string full = result_to_json(cfg, r, with_samples);
  EXPECT_NE(full.find("\"lag_gap\""), std::string::npos);

  EXPECT_THROW(write_result_json("/no_such_dir_xyz/out.json", cfg, r),
               std::runtime_error);
}

}  // namespace
}  // namespace fedco::core
