// The observability layer's contracts:
//
//   1. Zero observable cost — a run with an EventSink attached (any
//      sampling stride) produces the bit-identical ExperimentResult of the
//      hooks-off run, for every scheduler, on a churning fleet that
//      exercises every emission site (decisions, updates, parks, wakes,
//      joins, leaves, replans).
//   2. Deterministic sampling — the stride-N stream is exactly the stride-1
//      stream filtered to slots where t % N == 0.
//   3. Schema round-trip — every JSONL line parses and carries the fields
//      docs/observability.md promises, with doubles surviving exactly
//      (shortest-round-trip printing).
//   4. Crash-path flush — events reach the file when the writer is
//      destroyed without an explicit flush (e.g. during unwinding).
//   5. The run summary's digests are internally consistent and identical
//      with hooks on or off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "device/profiles.hpp"
#include "golden_fingerprint.hpp"
#include "obs/events.hpp"
#include "obs/jsonl_writer.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace fedco::core {
namespace {

constexpr SchedulerKind kAllSchedulers[] = {
    SchedulerKind::kImmediate, SchedulerKind::kSyncSgd, SchedulerKind::kOffline,
    SchedulerKind::kOnline};

/// A sink that just remembers everything it saw.
struct CollectSink final : obs::EventSink {
  std::vector<obs::Event> events;
  std::size_t flushes = 0;
  void emit(const obs::Event& e) override { events.push_back(e); }
  void flush() override { ++flushes; }
};

/// A churning heterogeneous fleet: joins/leaves from the churn windows,
/// parks/wakes from the calendar, decisions and updates from training, and
/// (under kOffline) window replans — every emission site fires.
ExperimentConfig churn_config(SchedulerKind kind) {
  scenario::ScenarioSpec spec;
  spec.name = "obs-churn";
  spec.num_users = 20;
  spec.horizon_slots = 2000;
  spec.device_mix = {{device::DeviceKind::kNexus6, 0.25},
                     {device::DeviceKind::kNexus6P, 0.25},
                     {device::DeviceKind::kHikey970, 0.25},
                     {device::DeviceKind::kPixel2, 0.25}};
  spec.arrival.distribution = scenario::ArrivalSpec::Distribution::kLogNormal;
  spec.arrival.mean_probability = 0.004;
  spec.arrival.sigma = 0.5;
  spec.network.lte_fraction = 0.3;
  spec.churn.churn_fraction = 0.4;
  spec.churn.min_presence = 0.2;
  spec.churn.max_presence = 0.6;
  ExperimentConfig base;
  base.seed = 13;
  base.scheduler = kind;
  base.record_interval = 25;
  base.offline_window_slots = 400;
  return apply_scenario(spec, base);
}

TEST(ObsEventTest, HooksDoNotPerturbResultsForAnyScheduler) {
  for (const SchedulerKind kind : kAllSchedulers) {
    const ExperimentConfig cfg = churn_config(kind);
    const std::uint64_t off = testing::fingerprint(run_experiment(cfg));
    for (const sim::Slot stride : {sim::Slot{1}, sim::Slot{7}}) {
      CollectSink sink;
      RunHooks hooks;
      hooks.events = &sink;
      hooks.events_sample = stride;
      const ExperimentResult r = run_experiment(cfg, hooks);
      EXPECT_EQ(off, testing::fingerprint(r))
          << scheduler_name(kind) << " stride " << stride;
      EXPECT_GE(sink.flushes, 1u) << scheduler_name(kind);
      if (stride == 1) {
        EXPECT_FALSE(sink.events.empty()) << scheduler_name(kind);
      }
    }
  }
}

TEST(ObsEventTest, SamplingIsAStrideFilterOfTheFullStream) {
  const ExperimentConfig cfg = churn_config(SchedulerKind::kOnline);
  CollectSink full;
  RunHooks full_hooks;
  full_hooks.events = &full;
  (void)run_experiment(cfg, full_hooks);

  constexpr sim::Slot kStride = 5;
  CollectSink sampled;
  RunHooks sampled_hooks;
  sampled_hooks.events = &sampled;
  sampled_hooks.events_sample = kStride;
  (void)run_experiment(cfg, sampled_hooks);

  std::vector<obs::Event> expected;
  for (const obs::Event& e : full.events) {
    if (e.slot % kStride == 0) expected.push_back(e);
  }
  ASSERT_EQ(expected.size(), sampled.events.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].kind, sampled.events[i].kind) << i;
    EXPECT_EQ(expected[i].slot, sampled.events[i].slot) << i;
    EXPECT_EQ(expected[i].user, sampled.events[i].user) << i;
    EXPECT_EQ(expected[i].a, sampled.events[i].a) << i;
    EXPECT_EQ(expected[i].b, sampled.events[i].b) << i;
    EXPECT_EQ(expected[i].x, sampled.events[i].x) << i;
  }
}

TEST(ObsEventTest, ZeroSampleStrideThrows) {
  RunHooks hooks;
  CollectSink sink;
  hooks.events = &sink;
  hooks.events_sample = 0;
  EXPECT_THROW((void)run_experiment(churn_config(SchedulerKind::kOnline),
                                    hooks),
               std::invalid_argument);
}

std::string temp_jsonl_path(const char* tag) {
  return ::testing::TempDir() + "obs_event_test_" + tag + ".jsonl";
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ObsEventTest, JsonlSchemaRoundTrips) {
  const std::string path = temp_jsonl_path("schema");
  {
    obs::JsonlEventWriter writer{path};
    writer.emit(obs::Event::decision(12, 3, true));
    writer.emit(obs::Event::update(40, 2, 17, 0.1 + 0.2));  // 0.30000000000000004
    writer.emit(obs::Event::update(41, -1, 5, 1.5));  // sync-round sentinel
    writer.emit(obs::Event::park(50, 4, 90));
    writer.emit(obs::Event::wake(90, 4));
    writer.emit(obs::Event::join(100, 9));
    writer.emit(obs::Event::leave(800, 9));
    writer.emit(obs::Event::stall(120, 3, 11));
    writer.emit(obs::Event::replan(400, 18, 6));
    EXPECT_EQ(writer.events_written(), 9u);
    writer.flush();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 9u);

  const util::JsonValue decision = util::parse_json(lines[0]);
  EXPECT_EQ(decision.find("t")->as_number(), 12.0);
  EXPECT_EQ(decision.find("e")->as_string(), "decision");
  EXPECT_EQ(decision.find("u")->as_number(), 3.0);
  EXPECT_EQ(decision.find("corun")->as_number(), 1.0);

  const util::JsonValue update = util::parse_json(lines[1]);
  EXPECT_EQ(update.find("e")->as_string(), "update");
  EXPECT_EQ(update.find("lag")->as_number(), 17.0);
  // Shortest-round-trip doubles: the parsed value is bit-exact.
  EXPECT_EQ(update.find("gap")->as_number(), 0.1 + 0.2);

  const util::JsonValue park = util::parse_json(lines[3]);
  EXPECT_EQ(park.find("e")->as_string(), "park");
  EXPECT_EQ(park.find("until")->as_number(), 90.0);

  const util::JsonValue stall = util::parse_json(lines[7]);
  EXPECT_EQ(stall.find("e")->as_string(), "stall");
  EXPECT_EQ(stall.find("waiting")->as_number(), 3.0);
  EXPECT_EQ(stall.find("active")->as_number(), 11.0);

  const util::JsonValue replan = util::parse_json(lines[8]);
  EXPECT_EQ(replan.find("e")->as_string(), "replan");
  EXPECT_EQ(replan.find("items")->as_number(), 18.0);
  EXPECT_EQ(replan.find("scheduled")->as_number(), 6.0);
  std::remove(path.c_str());
}

TEST(ObsEventTest, WriterFlushesOnDestructionWithoutExplicitFlush) {
  const std::string path = temp_jsonl_path("unwind");
  try {
    obs::JsonlEventWriter writer{path};
    writer.emit(obs::Event::join(0, 1));
    writer.emit(obs::Event::leave(5, 1));
    throw std::runtime_error{"simulated crash"};
  } catch (const std::runtime_error&) {
    // The writer unwound; its buffered events must already be on disk.
  }
  EXPECT_EQ(read_lines(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(ObsEventTest, WriterRejectsUnopenablePath) {
  EXPECT_THROW(obs::JsonlEventWriter{"/nonexistent-dir/events.jsonl"},
               std::runtime_error);
}

TEST(ObsEventTest, SummaryDigestsAreConsistentAndHookIndependent) {
  for (const SchedulerKind kind : kAllSchedulers) {
    const ExperimentConfig cfg = churn_config(kind);
    const ExperimentResult off = run_experiment(cfg);
    CollectSink sink;
    RunHooks hooks;
    hooks.events = &sink;
    hooks.events_sample = 3;
    const ExperimentResult on = run_experiment(cfg, hooks);

    const RunSummary& s = off.summary;
    for (const util::Percentiles* p :
         {&s.queue_q, &s.queue_h, &s.lag, &s.gap, &s.user_energy_j}) {
      EXPECT_LE(p->p50, p->p90) << scheduler_name(kind);
      EXPECT_LE(p->p90, p->p99) << scheduler_name(kind);
    }
    // Every scheduled decision became exactly one training session.
    EXPECT_EQ(s.decisions_scheduled, off.corun_sessions + off.separate_sessions)
        << scheduler_name(kind);
    // The churn windows flow through the summary counters.
    EXPECT_GT(s.joins, 0u) << scheduler_name(kind);
    EXPECT_GT(s.leaves, 0u) << scheduler_name(kind);
    if (kind == SchedulerKind::kOffline) {
      EXPECT_GT(s.replans, 0u);
    }

    // The counters are part of the deterministic run, not of the sink.
    EXPECT_EQ(s.decisions_scheduled, on.summary.decisions_scheduled);
    EXPECT_EQ(s.decisions_idle, on.summary.decisions_idle);
    EXPECT_EQ(s.parks, on.summary.parks);
    EXPECT_EQ(s.wakes, on.summary.wakes);
    EXPECT_EQ(s.joins, on.summary.joins);
    EXPECT_EQ(s.leaves, on.summary.leaves);
    EXPECT_EQ(s.barrier_stall_slots, on.summary.barrier_stall_slots);
    EXPECT_EQ(s.replans, on.summary.replans);
  }
}

}  // namespace
}  // namespace fedco::core
